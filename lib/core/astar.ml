type stats = {
  expanded : int;
  generated : int;
  reopened : int;
  pruned : int;
  max_queue : int;
  max_live : int;
}

type result = { cost : float; plan : Plan.t; stats : stats }

module Ktbl = Statekey.Tbl

(* Per-solve precomputation shared by the heuristic and the edge-weight
   evaluator: suffix sums K.(t).(i) = total arrivals to table i during
   [t, T], the global per-table one-step maximum m_i, the paper's batch
   bounds b_i with their costs f_i(b_i), and each f_i tabulated over the
   reachable argument range [0, K.(0).(i) + m_i] so hot-path cost lookups
   are array reads instead of closure calls. *)
type tables = {
  suffix : int array array;
  bounds : int array;
  f_bounds : float array;
  f_tab : float array array;
}

let precompute spec =
  let n = Spec.n_tables spec in
  let horizon = Spec.horizon spec in
  let suffix = Array.make_matrix (horizon + 2) n 0 in
  for t = horizon downto 0 do
    for i = 0 to n - 1 do
      suffix.(t).(i) <- suffix.(t + 1).(i) + (Spec.arrivals spec).(t).(i)
    done
  done;
  let m = Array.make n 0 in
  Array.iter
    (fun row -> Array.iteri (fun i c -> m.(i) <- max m.(i) c) row)
    (Spec.arrivals spec);
  let bounds =
    Array.init n (fun i ->
        let cap = max 1 (suffix.(0).(i) + m.(i) + 1) in
        let best =
          Cost.Check.max_batch (Spec.cost_fn spec i) ~limit:(Spec.limit spec)
            ~cap
        in
        max 1 (m.(i) + best))
  in
  let f_bounds =
    Array.mapi (fun i bi -> Cost.Func.eval (Spec.cost_fn spec i) bi) bounds
  in
  let f_tab =
    Array.init n (fun i ->
        Array.init
          (suffix.(0).(i) + m.(i) + 1)
          (fun k -> Cost.Func.eval (Spec.cost_fn spec i) k))
  in
  { suffix; bounds; f_bounds; f_tab }

(* Tabulated f_i(k); falls back to a direct evaluation for arguments
   beyond the reachable range (only possible for caller-supplied states,
   never for search-generated ones). *)
let f_component spec tables i k =
  let tab = tables.f_tab.(i) in
  if k < Array.length tab then tab.(k) else Cost.Func.eval (Spec.cost_fn spec i) k

(* Σ_i f_i(v_i), summed in ascending table order so the result is
   bit-identical to [Spec.f] (each term is the same float, and adding a
   0.0 term is exact). *)
let f_vector spec tables (v : Statevec.t) =
  let acc = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. f_component spec tables i v.(i)
  done;
  !acc

(* Per-table lower bound on the cost of processing M remaining
   modifications: the paper's batch-count bound floor(M / b_i) * f_i(b_i)
   (any lazy batch holds at most b_i modifications), strengthened with the
   subadditive bound f_i(M).  Both are admissible, so their max is.

   Note a deviation from the paper: Lemma 7 claims this heuristic is
   consistent, but it is not — crossing a floor boundary can drop the
   batch-count term by f_i(b_i) while the connecting edge costs only
   f_i(q) < f_i(b_i).  The search below therefore allows node reopening,
   which keeps A* optimal for any admissible heuristic. *)
let heuristic_of spec tables =
  let horizon = Spec.horizon spec in
  fun ~t (s : Statevec.t) ->
    (* K_i counts arrivals in (t, T]. *)
    let start = min (t + 1) (horizon + 1) in
    let acc = ref 0.0 in
    Array.iteri
      (fun i si ->
        let remaining = si + tables.suffix.(start).(i) in
        let batch_bound =
          float_of_int (remaining / tables.bounds.(i)) *. tables.f_bounds.(i)
        in
        let subadditive_bound = f_component spec tables i remaining in
        acc := !acc +. Float.max batch_bound subadditive_bound)
      s;
    !acc

let make_heuristic spec = heuristic_of spec (precompute spec)

(* Partial application memoizes the precomputation: [heuristic spec] does
   the O(T·n) suffix-sum / batch-bound / tabulation work once and returns
   a closure that is pure array arithmetic per call.  (This used to
   rebuild everything on every [~t s] invocation.) *)
let heuristic = make_heuristic

(* Walk arrivals forward from [t0 + 1] accumulating into a copy of [s];
   return either the first full pre-action time with its state, or the
   final (non-full) pre-action state at the horizon. *)
type scan_result =
  | Full_at of int * Statevec.t
  | Horizon_state of Statevec.t

let scan_to_full spec t0 s =
  let horizon = Spec.horizon spec in
  let acc = Statevec.copy s in
  let rec loop t =
    if t > horizon then Horizon_state acc
    else begin
      Statevec.add_in_place acc (Spec.arrivals spec).(t);
      if t < horizon && Spec.is_full spec acc then Full_at (t, Statevec.copy acc)
      else loop (t + 1)
    end
  in
  loop (t0 + 1)

let solve_exclusive ~use_heuristic spec =
  let n = Spec.n_tables spec in
  let horizon = Spec.horizon spec in
  let tables = precompute spec in
  let h =
    if use_heuristic then heuristic_of spec tables else fun ~t:_ _ -> 0.0
  in
  let queue = Util.Pqueue.create () in
  let g : float Ktbl.t = Ktbl.create 4096 in
  let parent : (Statekey.t * int * Statevec.t) Ktbl.t = Ktbl.create 4096 in
  let expanded = ref 0 and generated = ref 0 in
  let reopened = ref 0 and pruned = ref 0 in
  let max_queue = ref 0 and max_live = ref 0 in
  let source = Statekey.make ~time:(-1) (Statevec.zero n) in
  let dest = Statekey.make ~time:horizon (Statevec.zero n) in
  Ktbl.replace g source 0.0;
  Util.Pqueue.push queue
    ~priority:(h ~t:(-1) (Statevec.zero n))
    (source, 0.0);
  (* Relax one edge.  [g_from] is the settled g-value of the node being
     expanded (passed in once per expansion instead of re-probing the
     hashtable per generated edge). *)
  let relax ~from ~g_from ~time ~action node_key =
    incr generated;
    let tentative = g_from +. f_vector spec tables action in
    match Ktbl.find_opt g node_key with
    | Some existing when tentative >= existing -. 1e-12 ->
        (* Closed-set dominance: a recorded path to this key is already at
           least as good — drop the node without touching the queue. *)
        incr pruned
    | known ->
        (* The heuristic is admissible but not consistent (see above), so
           a shorter path to an already-recorded node must reopen it. *)
        if known <> None then incr reopened;
        Ktbl.replace g node_key tentative;
        Ktbl.replace parent node_key (from, time, action);
        max_live := max !max_live (Ktbl.length g);
        Util.Pqueue.push queue
          ~priority:
            (tentative +. h ~t:(Statekey.time node_key) (Statekey.state node_key))
          (node_key, tentative);
        max_queue := max !max_queue (Util.Pqueue.length queue)
  in
  let expand node_key g_node =
    let t0 = Statekey.time node_key and s = Statekey.state node_key in
    match scan_to_full spec t0 s with
    | Horizon_state pre ->
        (* Single edge to the destination: flush everything at T (also
           covers the t2 = T case). *)
        relax ~from:node_key ~g_from:g_node ~time:horizon ~action:pre dest
    | Full_at (t2, pre) ->
        List.iter
          (fun action ->
            let post = Statevec.sub pre action in
            relax ~from:node_key ~g_from:g_node ~time:t2 ~action
              (Statekey.make ~time:t2 post))
          (Actions.minimal_greedy_actions spec pre)
  in
  let rec search () =
    match Util.Pqueue.pop queue with
    | None -> None
    | Some (_, (node_key, g_at_push)) ->
        if Statekey.equal node_key dest then Some (Ktbl.find g node_key)
        else begin
          (* Lazy deletion: the g-value recorded at push time tells us
             whether the node was relaxed to something better since (no
             heuristic re-evaluation needed). *)
          let g_now = Ktbl.find g node_key in
          if g_at_push > g_now +. 1e-12 then begin
            incr pruned;
            search ()
          end
          else begin
            incr expanded;
            expand node_key g_now;
            search ()
          end
        end
  in
  match search () with
  | None -> invalid_arg "Astar.solve: no plan found (unreachable)"
  | Some cost ->
      (* Rebuild the plan by following parent pointers from the
         destination. *)
      let rec rebuild node acc =
        if Statekey.equal node source then acc
        else
          match Ktbl.find_opt parent node with
          | Some (from, time, action) -> rebuild from ((time, action) :: acc)
          | None -> acc
      in
      let actions =
        List.filter (fun (_, a) -> not (Statevec.is_zero a)) (rebuild dest [])
      in
      let stats =
        {
          expanded = !expanded;
          generated = !generated;
          reopened = !reopened;
          pruned = !pruned;
          max_queue = !max_queue;
          max_live = !max_live;
        }
      in
      (* One booking per solve, so the disabled-path overhead stays a few
         ref reads regardless of search size. *)
      Telemetry.add "astar.expanded" (float_of_int stats.expanded);
      Telemetry.add "astar.generated" (float_of_int stats.generated);
      Telemetry.add "astar.reopened" (float_of_int stats.reopened);
      Telemetry.add "astar.pruned" (float_of_int stats.pruned);
      Telemetry.add "astar.key_collisions"
        (float_of_int (Statekey.collisions g));
      Telemetry.max_gauge "astar.queue_peak" (float_of_int stats.max_queue);
      Telemetry.max_gauge "astar.live_peak" (float_of_int stats.max_live);
      { cost; plan = Plan.of_actions actions; stats }

let solve ?(use_heuristic = true) spec =
  Telemetry.with_span ~name:"astar.solve" (fun () ->
      solve_exclusive ~use_heuristic spec)
