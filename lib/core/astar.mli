(** Optimal LGM plans via A* over the plan-space graph (§4.1).

    Nodes are (time, post-action state) pairs; an edge leaves a node at the
    first future time its pre-action state becomes full and carries one
    minimal greedy valid action.  The paper's heuristic
    [h(x) = Σ_i floor((s[i] + K_i) / b_i) * f_i(b_i)] is admissible; we
    additionally take the max with the subadditive bound [Σ_i f_i(s[i] +
    K_i)].

    Deviation from the paper: Lemma 7 claims the heuristic consistent, but
    crossing a floor boundary can decrease the batch-count term by
    [f_i(b_i)] while the edge costs only [f_i(q) < f_i(b_i)], so it is
    not.  The search therefore reopens nodes when a cheaper path appears
    (skipping stale queue entries), which keeps A* optimal under any
    admissible heuristic.  See DESIGN.md.

    Engine notes (DESIGN.md §5): hashtables are keyed on packed
    {!Statekey.t} values (allocation-free probes, full-width FNV hash);
    per-table costs are tabulated once per solve so heuristic and
    edge-weight evaluation are array lookups; generated nodes dominated by
    an already-recorded g-value are pruned without touching the queue, and
    stale queue entries are skipped by comparing the g-value stored at
    push time. *)

type stats = {
  expanded : int;  (** nodes settled *)
  generated : int;  (** edges relaxed *)
  reopened : int;  (** relaxations that improved an already-known node *)
  pruned : int;
      (** generated nodes dominated by a recorded g-value, plus stale
          queue entries skipped at pop time *)
  max_queue : int;  (** open-list peak size *)
  max_live : int;  (** peak number of distinct (time, state) keys known *)
}

type result = { cost : float; plan : Plan.t; stats : stats }

val solve : ?use_heuristic:bool -> ?domains:int -> Spec.t -> result
(** Returns the cost of the best LGM plan, the plan, and search statistics.
    [use_heuristic:false] degrades to uniform-cost (Dijkstra) search — used
    by the ablation bench to show how much the heuristic prunes.

    [domains] (default 1) runs a hash-distributed parallel A* ("HDA-star"):
    node ownership is sharded across that many domains by the packed key's
    FNV hash, each shard keeps private open/closed sets and successors are
    message-passed to their owner, with a global branch-and-bound incumbent
    and a counter-based termination-detection protocol (DESIGN.md §10).
    [domains:1] is the unchanged sequential solver, bit-identical to
    previous releases.  Any [domains] returns the same optimal cost; the
    plan may differ (equal-cost ties can break differently) but always
    validates, and in [stats] the [max_queue]/[max_live] peaks become sums
    of per-shard peaks.

    When the {!Telemetry} collector is enabled each solve runs inside an
    ["astar.solve"] span and books the stats as [astar.expanded],
    [astar.generated], [astar.reopened], [astar.pruned] and
    [astar.key_collisions] counters (plus [astar.messages] for parallel
    solves) and the [astar.queue_peak] and [astar.live_peak] gauges. *)

val heuristic : Spec.t -> t:int -> Statevec.t -> float
(** Exposed for the consistency property test.  [heuristic spec] performs
    the suffix-sum / batch-bound precomputation once and returns a closure
    reusable across [(t, s)] queries — hold on to the partial application
    when evaluating many states. *)
