(** Optimal LGM plans via A* over the plan-space graph (§4.1).

    Nodes are (time, post-action state) pairs; an edge leaves a node at the
    first future time its pre-action state becomes full and carries one
    minimal greedy valid action.

    Heuristic (re-derived; DESIGN.md §13): [h(t, s) = Σ_i lb_i(s[i] +
    K_i)], where [lb_i(M)] is the exact optimum of the single-table
    relaxation — the cheapest way to process [M] modifications of table
    [i] in batches of at most [b_i] (the paper's batch bound
    [b_i = m_i + max{k : f_i(k) <= C}]) — tabulated by dynamic
    programming once per solve.  This dominates both terms of the paper's
    §4.1 heuristic [floor(M / b_i) * f_i(b_i) ∨ f_i(M)]: the subadditive
    term because a one-batch decomposition is in the minimand, and the
    floor term because that term is {e unsound} for subadditive
    non-concave costs (the blocked family has increasing [f(k)/k], so
    the floor bound can exceed the cheapest decomposition — Lemma 7's
    consistency claim fails for the same reason).  On search-generated
    nodes the DP bound is consistent (every edge action satisfies
    [a_i <= b_i] and [lb_i(M) <= f_i(a_i) + lb_i(M - a_i)]); reopening is
    kept for caller-supplied states outside the reachable range, where
    only admissibility holds.  Flatter higher-order cost curves make
    [b_i] large and the old floor term vacuous; the DP bound stays tight
    for them — that is what re-deriving the [K_i]/batch bounds for
    {!Ivm.Viewdef.Higher_order} calibration amounts to.

    Engine notes (DESIGN.md §5): hashtables are keyed on packed
    {!Statekey.t} values (allocation-free probes, full-width FNV hash);
    per-table costs are tabulated once per solve so heuristic and
    edge-weight evaluation are array lookups; generated nodes dominated by
    an already-recorded g-value are pruned without touching the queue, and
    stale queue entries are skipped by comparing the g-value stored at
    push time. *)

type stats = {
  expanded : int;  (** nodes settled *)
  generated : int;  (** edges relaxed *)
  reopened : int;  (** relaxations that improved an already-known node *)
  pruned : int;
      (** generated nodes dominated by a recorded g-value, plus stale
          queue entries skipped at pop time *)
  max_queue : int;  (** open-list peak size *)
  max_live : int;  (** peak number of distinct (time, state) keys known *)
}

type result = { cost : float; plan : Plan.t; stats : stats }

val solve : ?use_heuristic:bool -> ?domains:int -> Spec.t -> result
(** Returns the cost of the best LGM plan, the plan, and search statistics.
    [use_heuristic:false] degrades to uniform-cost (Dijkstra) search — used
    by the ablation bench to show how much the heuristic prunes.

    [domains] (default 1) runs a hash-distributed parallel A* ("HDA-star"):
    node ownership is sharded across that many domains by the packed key's
    FNV hash, each shard keeps private open/closed sets and successors are
    message-passed to their owner, with a global branch-and-bound incumbent
    and a counter-based termination-detection protocol (DESIGN.md §10).
    [domains:1] is the unchanged sequential solver, bit-identical to
    previous releases.  Any [domains] returns the same optimal cost; the
    plan may differ (equal-cost ties can break differently) but always
    validates, and in [stats] the [max_queue]/[max_live] peaks become sums
    of per-shard peaks.

    When the {!Telemetry} collector is enabled each solve runs inside an
    ["astar.solve"] span and books the stats as [astar.expanded],
    [astar.generated], [astar.reopened], [astar.pruned] and
    [astar.key_collisions] counters (plus [astar.messages] for parallel
    solves) and the [astar.queue_peak] and [astar.live_peak] gauges. *)

val heuristic : Spec.t -> t:int -> Statevec.t -> float
(** Exposed for the consistency property test.  [heuristic spec] performs
    the suffix-sum / batch-bound / DP-tabulation precomputation once and
    returns a closure reusable across [(t, s)] queries — hold on to the
    partial application when evaluating many states. *)

val batch_bounds : Spec.t -> int array
(** The per-table batch bounds [b_i = m_i + max{k : f_i(k) <= C}] (at
    least 1) the heuristic's decompositions are restricted to — exposed so
    benches and tests can report how calibrated cost shapes move them. *)

val table_lower_bound : Spec.t -> table:int -> remaining:int -> float
(** [table_lower_bound spec ~table ~remaining] — the tabulated [lb_i(M)]:
    the cheapest total cost of processing [M] modifications of the table
    in batches of at most [b_i].  Exposed for the admissibility property
    suite (it must never exceed the cost of any explicit decomposition).
    Recomputes the precomputation; use {!heuristic} in hot loops. *)
