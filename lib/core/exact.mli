(** Exact globally optimal plans by dynamic programming over all valid
    plans — including non-lazy, non-greedy, non-minimal ones.

    Exponential in delta sizes and table count; intended for small test
    instances that validate Theorem 1's factor-2 bound and Theorem 2's
    equality for affine costs.  The §3.2 tightness construction needs this
    to realize the non-LGM plan that LGM plans cannot express. *)

exception Too_large of string
(** Raised when the search would exceed the configured budget. *)

val solve : ?max_expansions:int -> ?domains:int -> Spec.t -> float * Plan.t
(** [solve spec] returns the minimum total maintenance cost and a plan
    achieving it.  [max_expansions] (default [2_000_000]) bounds the number
    of (state, action) combinations explored before {!Too_large} is
    raised.  Candidate actions are enumerated lazily (odometer order, one
    scratch vector) and the budget check runs during enumeration, so the
    bound limits memory as well as time — an instance whose candidate set
    is astronomically large raises {!Too_large} instead of exhausting
    memory materializing it.

    [domains] (default 1) runs the layered parallel DP: forward
    reachability materializes each time layer's pre-action states, then a
    backward sweep computes the value function one layer at a time, states
    partitioned across a {!Parallel.Pool} by [Statekey.hash mod domains]
    with a barrier between layers.  Any [domains] returns the bit-identical
    optimal cost {e and} plan (per state the candidates are enumerated in
    the same odometer order with the same float arithmetic, and the strict
    [<] keeps the same first minimum).  [domains:1] is the unchanged
    sequential memoized solver.  The layered passes enumerate every
    state's candidate set twice (reachability + values), so against the
    same budget they count roughly twice the sequential expansions.

    When the {!Telemetry} collector is enabled each solve books the
    [exact.expansions] and [exact.key_collisions] counters and the
    [exact.live_peak] gauge (peak memoized states), also on a
    {!Too_large} exit. *)
