type t = {
  strategy : Strategy.t;
  total_cost : float;
  plan : Plan.t;
  valid : bool;
  actions : int;
  cost_units : float option;
  wall_seconds : float option;
  telemetry : Telemetry.Metrics.snapshot;
}

let name r = Strategy.name r.strategy
let label r = Strategy.label r.strategy

let of_plan ?cost_units ?wall_seconds ?(telemetry = []) ~strategy spec plan =
  {
    strategy;
    total_cost = Plan.cost spec plan;
    plan;
    valid = Plan.is_valid spec plan;
    actions = List.length (Plan.actions plan);
    cost_units;
    wall_seconds;
    telemetry;
  }

let cost_per_modification spec r =
  let total_mods =
    Array.fold_left
      (fun acc row -> acc + Array.fold_left ( + ) 0 row)
      0 (Spec.arrivals spec)
  in
  if total_mods = 0 then 0.0 else r.total_cost /. float_of_int total_mods
