(* A Vec plus a head offset; compacted when the dead prefix dominates. *)
type t = { mutable items : Change.t Util.Vec.t; mutable head : int }

let create () = { items = Util.Vec.create (); head = 0 }

let push q change = Util.Vec.push q.items change

let size q = Util.Vec.length q.items - q.head

let compact q =
  if q.head > 1024 && q.head > Util.Vec.length q.items / 2 then begin
    let fresh = Util.Vec.create () in
    for i = q.head to Util.Vec.length q.items - 1 do
      Util.Vec.push fresh (Util.Vec.get q.items i)
    done;
    q.items <- fresh;
    q.head <- 0
  end

let take q k =
  if k < 0 then invalid_arg "Pending.take: negative count";
  if k > size q then invalid_arg "Pending.take: not enough pending changes";
  let out = List.init k (fun i -> Util.Vec.get q.items (q.head + i)) in
  q.head <- q.head + k;
  compact q;
  out

let take_at_most q k =
  if k < 0 then invalid_arg "Pending.take_at_most: negative count";
  take q (min k (size q))

let peek_all q = List.init (size q) (fun i -> Util.Vec.get q.items (q.head + i))

let clear q =
  q.items <- Util.Vec.create ();
  q.head <- 0
