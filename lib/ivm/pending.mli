(** FIFO delta queue for one base table.

    Arrivals are appended; the maintainer removes the earliest [k]
    modifications when the planner's action says to process them. *)

type t

val create : unit -> t
val push : t -> Change.t -> unit
val size : t -> int
val take : t -> int -> Change.t list
(** [take q k] removes and returns the earliest [k] modifications in
    arrival order.  Raises [Invalid_argument] if fewer than [k] are
    pending. *)

val take_at_most : t -> int -> Change.t list
(** [take_at_most q k] removes and returns the earliest [min k (size q)]
    modifications — the forgiving variant rescue and recovery paths use
    when a plan's action may exceed what actually arrived.  Raises
    [Invalid_argument] only on negative [k]. *)

val peek_all : t -> Change.t list
(** All pending modifications in arrival order, without removing them. *)

val clear : t -> unit
