module Thash = Hashtbl.Make (struct
  type t = Relation.Tuple.t

  let equal = Relation.Tuple.equal
  let hash = Relation.Tuple.hash
end)

module Vhash = Hashtbl.Make (struct
  type t = Relation.Value.t

  let equal = Relation.Value.equal
  let hash = Relation.Value.hash
end)

type content =
  | Bag of { counts : int Thash.t; positions : int array }
      (** projected-tuple multiplicities; [positions] maps joined-schema
          positions to output positions *)
  | Grouped of Groups.t

type t = {
  view : Viewdef.t;
  pending : Pending.t array;
  content : content;
  filter_fn : (Relation.Tuple.t -> bool) option;
  meter : Relation.Meter.t;
  order : Viewdef.order;
  mutable dv : Deltaview.t option;
      (** the materialized [d(V)/d(R_i)] structures; [Some] iff
          [order = Higher_order] *)
  mutable path_override : [ `Index | `Scan ] option;
      (** physical-path override for the batch currently inside
          {!process}; [None] outside a batch and for default routing *)
}

let view m = m.view
let meter m = m.meter
let order m = m.order

let bag_apply counts tuple count =
  let current = match Thash.find_opt counts tuple with Some c -> c | None -> 0 in
  let updated = current + count in
  if updated < 0 then
    invalid_arg "Maintainer: view tuple multiplicity would go negative";
  if updated = 0 then Thash.remove counts tuple
  else Thash.replace counts tuple updated

let on_arrive m i change =
  if i < 0 || i >= Array.length m.pending then
    invalid_arg "Maintainer.on_arrive: bad table index";
  Pending.push m.pending.(i) change

let pending_sizes m = Array.map Pending.size m.pending

let pending_size m i = Pending.size m.pending.(i)

(* --- delta join expansion ---------------------------------------------- *)

(* A partial result binds a subset of the tables to concrete tuples. *)
type partial = { bindings : Relation.Tuple.t option array; sign : int }

let bind partial j tuple =
  let bindings = Array.copy partial.bindings in
  bindings.(j) <- Some tuple;
  { partial with bindings }

(* Candidate expansion edges: those inside the scope with exactly one
   endpoint bound, normalized so [left] is the bound side.  First-order
   maintenance always passes an all-true scope (the whole view); the
   higher-order path restricts expansion to one delta-view component. *)
let frontier_edges view ~scope bound =
  List.filter_map
    (fun (e : Viewdef.join_edge) ->
      if not (scope.(e.left) && scope.(e.right)) then None
      else if bound.(e.left) && not bound.(e.right) then Some e
      else if bound.(e.right) && not bound.(e.left) then
        Some
          {
            Viewdef.left = e.right;
            left_col = e.right_col;
            right = e.left;
            right_col = e.left_col;
          }
      else None)
    (Viewdef.join_edges view)

(* Estimated cost of expanding one partial across an edge: an indexed
   partner costs a probe returning its average bucket size; an unindexed
   partner costs its full row count (shared scan, but a conservative
   per-partial proxy keeps the heuristic simple). *)
let edge_cost_estimate view ~delta (e : Viewdef.join_edge) =
  let dst = (Viewdef.tables view).(e.right) in
  let rows = float_of_int (max 1 (Relation.Table.row_count dst)) in
  if
    Relation.Table.has_index dst e.right_col
    && not (Viewdef.force_scan view ~delta ~partner:e.right)
  then rows /. float_of_int (max 1 (Relation.Table.distinct_estimate dst e.right_col))
  else rows

(* Pick the next join edge from a bound table to an unbound one: first in
   edge-list order (Fixed) or cheapest estimated expansion (Adaptive). *)
let next_edge view ~delta ~scope bound =
  match frontier_edges view ~scope bound with
  | [] -> None
  | first :: rest -> (
      match Viewdef.join_order view with
      | Viewdef.Fixed -> Some first
      | Viewdef.Adaptive ->
          Some
            (List.fold_left
               (fun best e ->
                 if
                   edge_cost_estimate view ~delta e
                   < edge_cost_estimate view ~delta best
                 then e
                 else best)
               first rest))

let expand_step m ~delta partials (e : Viewdef.join_edge) =
  let tables = Viewdef.tables m.view in
  let src_table = tables.(e.left) and dst_table = tables.(e.right) in
  let src_pos =
    Relation.Schema.index_of (Relation.Table.schema src_table) e.left_col
  in
  let bound_value p =
    match p.bindings.(e.left) with
    | Some tuple -> Relation.Tuple.get tuple src_pos
    | None -> assert false
  in
  if
    Relation.Table.has_index dst_table e.right_col
    && (match m.path_override with
       | Some `Scan -> false
       | Some `Index -> true
       | None -> not (Viewdef.force_scan m.view ~delta ~partner:e.right))
  then
    (* Indexed nested-loop: one probe per partial. *)
    List.concat_map
      (fun p ->
        let matches = Relation.Table.lookup dst_table e.right_col (bound_value p) in
        List.map (fun rt -> bind p e.right rt) matches)
      partials
  else begin
    (* No index: build a hash over the batch, scan the partner once — in
       column batches, materializing a partner tuple only on a key match.
       Meter totals are row-equivalent to the old row-at-a-time path: one
       hash_build per partial, one hash_probe per scanned row (bumped per
       batch), plus the scan counters that [scan_batches] itself books. *)
    let dst_schema = Relation.Table.schema dst_table in
    let dst_pos = Relation.Schema.index_of dst_schema e.right_col in
    let parr = Array.of_list partials in
    Relation.Meter.bump_hash_build m.meter (Array.length parr);
    let out = ref [] in
    let int_key =
      Relation.Schema.column_type dst_schema dst_pos = Relation.Datatype.TInt
      && Array.for_all
           (fun p ->
             match bound_value p with
             | Relation.Value.Int _ | Relation.Value.Null -> true
             | _ -> false)
           parr
    in
    if int_key then begin
      (* unboxed probe set over the delta's join-key values; NULL-valued
         partials keep their own chain because NULL joins NULL here
         (Value.equal Null Null), as in the boxed hash path *)
      let h = Relation.Ihash.create (max 16 (Array.length parr)) in
      let null_partials = ref [] in
      Array.iteri
        (fun j p ->
          match bound_value p with
          | Relation.Value.Int k -> Relation.Ihash.add h k j
          | _ -> null_partials := j :: !null_partials)
        parr;
      let null_partials = List.rev !null_partials in
      Relation.Table.scan_batches dst_table (fun b ->
          Relation.Meter.bump_hash_probe m.meter b.Relation.Batch.n_sel;
          let col = b.Relation.Batch.cols.(dst_pos) in
          let data = Relation.Column.int_data col in
          let valid = Relation.Column.validity col in
          let base = b.Relation.Batch.base and sel = b.Relation.Batch.sel in
          for s = 0 to b.Relation.Batch.n_sel - 1 do
            let r = Array.unsafe_get sel s in
            let abs = base + r in
            if Relation.Column.bit valid abs then begin
              let cell =
                ref (Relation.Ihash.first h (Bigarray.Array1.unsafe_get data abs))
              in
              if !cell >= 0 then begin
                let rt = Relation.Batch.tuple b r in
                while !cell >= 0 do
                  let j = Relation.Ihash.payload_of h !cell in
                  out := bind parr.(j) e.right rt :: !out;
                  cell := Relation.Ihash.next_cell h !cell
                done
              end
            end
            else
              match null_partials with
              | [] -> ()
              | js ->
                  let rt = Relation.Batch.tuple b r in
                  List.iter
                    (fun j -> out := bind parr.(j) e.right rt :: !out)
                    js
          done)
    end
    else begin
      let by_value = Vhash.create (max 16 (Array.length parr)) in
      Array.iter (fun p -> Vhash.add by_value (bound_value p) p) parr;
      Relation.Table.scan_batches dst_table (fun b ->
          Relation.Meter.bump_hash_probe m.meter b.Relation.Batch.n_sel;
          Relation.Batch.iter_sel
            (fun r ->
              let v = Relation.Batch.value b dst_pos r in
              match Vhash.find_all by_value v with
              | [] -> ()
              | ps ->
                  let rt = Relation.Batch.tuple b r in
                  List.iter (fun p -> out := bind p e.right rt :: !out) ps)
            b)
    end;
    List.rev !out
  end

let joined_tuple m partial =
  let tables = Viewdef.tables m.view in
  let parts =
    Array.mapi
      (fun j _ ->
        match partial.bindings.(j) with
        | Some tuple -> tuple
        | None -> assert false)
      tables
  in
  Array.concat (Array.to_list parts)

(* Delta-join expansion of signed delta tuples of table [delta] across the
   in-scope tables (all bindings in the result cover exactly the scope). *)
let expand_scoped m ~scope ~delta deltas =
  let n = Viewdef.n_tables m.view in
  let bound = Array.make n false in
  bound.(delta) <- true;
  let partials =
    List.map
      (fun (tuple, sign) ->
        let bindings = Array.make n None in
        bindings.(delta) <- Some tuple;
        { bindings; sign })
      deltas
  in
  let rec expand partials bound =
    match next_edge m.view ~delta ~scope bound with
    | None -> partials
    | Some e ->
        let expanded = expand_step m ~delta partials e in
        bound.(e.right) <- true;
        expand expanded bound
  in
  expand partials bound

(* The scoped expansion in the shape {!Deltaview} consumes. *)
let expander m : Deltaview.expander =
 fun ~scope ~delta deltas ->
  List.map
    (fun p -> (p.bindings, p.sign))
    (expand_scoped m ~scope ~delta deltas)

(* Net signed joined rows per distinct row: expansion order depends on the
   physical path (index probes preserve delta order, shared scans emit in
   scan order), and a batch touching the same row twice must not apply a
   removal before the matching insertion.  Netting makes the application
   order-insensitive.  The view filter is applied here, on the full joined
   row. *)
let net_contributions m rows =
  let net = Thash.create 64 in
  let order = ref [] in
  List.iter
    (fun (row, count) ->
      let keep = match m.filter_fn with Some pred -> pred row | None -> true in
      if keep then
        match Thash.find_opt net row with
        | Some cell -> cell := !cell + count
        | None ->
            Thash.add net row (ref count);
            order := row :: !order)
    rows;
  List.rev !order
  |> List.map (fun row -> (row, !(Thash.find net row)))
  |> List.filter (fun (_, count) -> count <> 0)

(* Compute the signed joined contributions of a batch of delta tuples from
   table [i] by first-order delta join: expand across every other table,
   then net. *)
let expand_batch m i deltas =
  let scope = Array.make (Viewdef.n_tables m.view) true in
  let full = expand_scoped m ~scope ~delta:i deltas in
  net_contributions m (List.map (fun p -> (joined_tuple m p, p.sign)) full)

let create ?meter ?order view =
  let tables = Viewdef.tables view in
  let meter =
    match meter with Some m -> m | None -> Relation.Table.meter tables.(0)
  in
  let joined_schema = Viewdef.joined_schema view in
  let filter_fn =
    Option.map (Relation.Expr.compile_pred joined_schema) (Viewdef.filter view)
  in
  let joined_rows = Relation.Ra.eval (Viewdef.joined_plan view) in
  let content =
    if Viewdef.aggs view <> [] then begin
      let groups =
        Groups.create ~schema:joined_schema ~group_by:(Viewdef.group_by view)
          ~specs:(Viewdef.aggs view)
      in
      List.iter (fun row -> Groups.apply groups row 1) joined_rows;
      Grouped groups
    end
    else begin
      let positions =
        match Viewdef.projection view with
        | Some cols -> snd (Relation.Schema.project joined_schema cols)
        | None ->
            Array.init (Relation.Schema.arity joined_schema) (fun i -> i)
      in
      let counts = Thash.create 256 in
      List.iter
        (fun row -> bag_apply counts (Relation.Tuple.project row positions) 1)
        joined_rows;
      Bag { counts; positions }
    end
  in
  let order = match order with Some o -> o | None -> Viewdef.order view in
  let m =
    {
      view;
      pending = Array.map (fun _ -> Pending.create ()) tables;
      content;
      filter_fn;
      meter;
      order;
      dv = None;
      path_override = None;
    }
  in
  (match order with
  | Viewdef.First_order -> ()
  | Viewdef.Higher_order ->
      m.dv <- Some (Deltaview.create ~meter ~expand:(expander m) view));
  m

let apply_contribution m (row, sign) =
  Relation.Meter.bump_output m.meter 1;
  match m.content with
  | Bag { counts; positions } ->
      bag_apply counts (Relation.Tuple.project row positions) sign
  | Grouped groups -> Groups.apply groups row sign

let apply_to_base m i change =
  let table = (Viewdef.tables m.view).(i) in
  match change with
  | Change.Insert t -> ignore (Relation.Table.insert table t)
  | Change.Delete t ->
      if not (Relation.Table.delete_tuple table t) then
        invalid_arg
          (Printf.sprintf
             "Maintainer.process: delete of missing tuple %s from %s"
             (Relation.Tuple.to_string t)
             (Relation.Table.name table))
  | Change.Update { before; after } ->
      if not (Relation.Table.delete_tuple table before) then
        invalid_arg
          (Printf.sprintf
             "Maintainer.process: update of missing tuple %s in %s"
             (Relation.Tuple.to_string before)
             (Relation.Table.name table));
      ignore (Relation.Table.insert table after)

(* Export one maintenance batch's meter delta as telemetry: the
   [meter.<counter>] family labelled by table, plus aggregate batch
   counters.  Guarded so the disabled path does no float conversion. *)
let book_batch_telemetry ~table ~k (d : Relation.Meter.snapshot) =
  if Telemetry.enabled () then begin
    let labels = [ ("table", table) ] in
    let add name v = if v <> 0 then Telemetry.add ~labels name (float_of_int v) in
    add "meter.seq_scanned" d.seq_scanned;
    add "meter.index_probes" d.index_probes;
    add "meter.index_entries" d.index_entries;
    add "meter.inserted" d.inserted;
    add "meter.deleted" d.deleted;
    add "meter.updated" d.updated;
    add "meter.hash_build" d.hash_build;
    add "meter.hash_probe" d.hash_probe;
    add "meter.output" d.output;
    add "meter.batch_setup" d.batch_setup;
    add "meter.batches" d.batches;
    Telemetry.incr "maintainer.batches";
    Telemetry.add "maintainer.cost_units" (Relation.Meter.cost_units d);
    Telemetry.observe "maintainer.batch_size" (float_of_int k)
  end

let process ?path m i k =
  if i < 0 || i >= Array.length m.pending then
    invalid_arg "Maintainer.process: bad table index";
  let table () = Relation.Table.name (Viewdef.tables m.view).(i) in
  let run_batch () =
    let before = Relation.Meter.snapshot m.meter in
    if k > 0 then begin
      let batch = Pending.take m.pending.(i) k in
      Relation.Meter.bump_batch_setup m.meter 1;
      let deltas = List.concat_map Change.signed_tuples batch in
      (match m.dv with
      | None ->
          let contributions = expand_batch m i deltas in
          List.iter (apply_contribution m) contributions
      | Some dv ->
          (* Higher-order: the view delta is a lookup-and-merge against
             [i]'s materialized delta view; then fold the batch into the
             other tables' delta views while their components' base
             tables still hold the pre-batch state. *)
          let contributions =
            net_contributions m (Deltaview.contributions dv i deltas)
          in
          List.iter (apply_contribution m) contributions;
          Deltaview.update dv ~delta:i deltas ~expand:(expander m));
      List.iter (apply_to_base m i) batch
    end;
    let delta = Relation.Meter.diff (Relation.Meter.snapshot m.meter) before in
    if Telemetry.enabled () then book_batch_telemetry ~table:(table ()) ~k delta;
    delta
  in
  let run () =
    m.path_override <- path;
    Fun.protect ~finally:(fun () -> m.path_override <- None) run_batch
  in
  if not (Telemetry.enabled ()) then run ()
  else
    Telemetry.with_span ~name:"maintainer.process"
      ~attrs:[ ("table", table ()); ("k", string_of_int k) ]
      run

let process_at_most ?path m i k =
  if i < 0 || i >= Array.length m.pending then
    invalid_arg "Maintainer.process_at_most: bad table index";
  if k < 0 then invalid_arg "Maintainer.process_at_most: negative count";
  let actual = min k (Pending.size m.pending.(i)) in
  (actual, process ?path m i actual)

let pending_changes m i =
  if i < 0 || i >= Array.length m.pending then
    invalid_arg "Maintainer.pending_changes: bad table index";
  Pending.peek_all m.pending.(i)

let refresh m =
  let before = Relation.Meter.snapshot m.meter in
  Array.iteri (fun i q -> ignore (process m i (Pending.size q))) m.pending;
  Relation.Meter.diff (Relation.Meter.snapshot m.meter) before

let rows m =
  match m.content with
  | Bag { counts; _ } ->
      let out = ref [] in
      Thash.iter
        (fun tuple count ->
          for _ = 1 to count do
            out := tuple :: !out
          done)
        counts;
      List.sort Relation.Tuple.compare !out
  | Grouped groups -> Groups.rows groups

let output_schema m =
  match m.content with
  | Bag _ -> Viewdef.output_schema m.view
  | Grouped groups -> Groups.output_schema groups

let check_consistent m =
  let reference =
    List.sort Relation.Tuple.compare
      (Relation.Ra.eval (Viewdef.reference_plan m.view))
  in
  let actual = rows m in
  (* Approximate comparison: incremental float aggregates sum in a
     different order than the recompute. *)
  if not (List.equal (Relation.Tuple.approx_equal ~eps:1e-9) reference actual)
  then
    Error
      (Printf.sprintf
         "view %s: incremental content (%d rows) differs from reference (%d \
          rows)"
         (Viewdef.name m.view) (List.length actual) (List.length reference))
  else
    match m.dv with
    | None -> Ok ()
    | Some dv -> Deltaview.check dv ~expand:(expander m)

let delta_view m = m.dv
