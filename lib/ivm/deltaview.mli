(** Materialized first-order delta views [d(V)/d(R_i)] — the auxiliary
    structures behind {!Viewdef.Higher_order} maintenance (DBToaster-style
    second-order delta processing).

    For each base table [i], removing [i] from the (connected) join graph
    splits the remaining tables into connected components; each component's
    sub-join is materialized as a hash multimap from the values [i] joins
    against (the anchor-edge columns) to the component's joined subtuples
    with multiplicity.  Applying a batch of [k] modifications of [i] is
    then one hash probe per (delta tuple, component) plus a cross product
    of the matches — index-like in [k] — instead of a delta join against
    the base tables.  Keeping components separate avoids materializing the
    cross product of unrelated branches (for a star join, the full rest
    join of the hub table would be the product of every spoke).

    The second-order part: when a batch of table [i] is processed, every
    other table's delta view contains [i] in exactly one component; that
    component is maintained by expanding the batch across the component's
    own edges (a strictly smaller join) and merging the subtuples.

    Metering: probes bump [hash_probe] (one per delta tuple per component)
    and [index_entries] (one per matched subtuple); maintenance merges
    bump [hash_build] (one per merged subtuple).  Expansions during
    maintenance are metered by the {!Maintainer} machinery they reuse. *)

type t

type expander =
  scope:bool array ->
  delta:int ->
  (Relation.Tuple.t * int) list ->
  (Relation.Tuple.t option array * int) list
(** Delta-join expansion restricted to the tables with [scope] set: given
    signed delta tuples of table [delta] (which must be in scope), returns
    partials binding every in-scope table.  Provided by {!Maintainer} so
    the delta views reuse its metered index/scan machinery. *)

val create : meter:Relation.Meter.t -> expand:expander -> Viewdef.t -> t
(** Build and fill one delta view per base table from the current base
    table contents. *)

val contributions :
  t -> int -> (Relation.Tuple.t * int) list -> (Relation.Tuple.t * int) list
(** [contributions t i deltas] — the signed joined-row contributions of a
    signed delta batch of table [i], computed purely from [i]'s delta view
    (no base-table access).  Rows are in canonical joined-schema order;
    the caller nets, filters and applies them. *)

val update : t -> delta:int -> (Relation.Tuple.t * int) list -> expand:expander -> unit
(** Fold a processed batch of table [delta] into every other table's delta
    view (the base tables must not yet reflect the batch).  Owners whose
    affected component is the same table set share one expansion. *)

val entries : t -> int
(** Total materialized subtuple count across all delta views — the memory
    footprint higher-order maintenance pays for its flat cost curves. *)

val check : t -> expand:expander -> (unit, string) result
(** Compare every component against a from-scratch recompute over the
    current base tables. *)
