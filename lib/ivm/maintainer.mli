(** Batch-incremental view maintenance engine.

    The base tables physically hold the *processed* database state; arrived
    but unprocessed modifications sit in per-table FIFO delta queues.  This
    realizes the paper's deferred-maintenance semantics without the state
    bug: a delta batch from table [i] always joins against exactly the
    states of the other tables that the view currently reflects.

    Processing a batch of [k] modifications from table [i]:

    + removes the earliest [k] modifications from queue [i],
    + computes their signed delta-join contributions against the other
      tables — per-tuple index probes when the partner table is indexed on
      the join column, otherwise one shared scan with a hash built over the
      batch (this is where the paper's cost asymmetry comes from),
    + folds the contributions into the materialized content (a counted bag
      for SPJ views, {!Groups} for aggregate views),
    + applies the modifications to base table [i] in FIFO order.

    All work is metered; {!process} returns the meter delta so callers can
    price the batch. *)

type t

val create : ?meter:Relation.Meter.t -> ?order:Viewdef.order -> Viewdef.t -> t
(** Materializes the view's initial content from the current base tables.
    [meter] (default: the first base table's meter) also receives the
    per-batch setup bumps.  [order] (default: the view's
    {!Viewdef.order}) selects the maintenance strategy; under
    [Higher_order] every {!Deltaview} is also materialized here. *)

val view : t -> Viewdef.t
val meter : t -> Relation.Meter.t

val order : t -> Viewdef.order
(** The maintenance order this instance runs. *)

val on_arrive : t -> int -> Change.t -> unit
(** Append a modification to table [i]'s delta queue.  The base table is
    not touched until the modification is processed. *)

val pending_sizes : t -> int array
val pending_size : t -> int -> int

val process :
  ?path:[ `Index | `Scan ] -> t -> int -> int -> Relation.Meter.snapshot
(** [process m i k]: batch-process the earliest [k] modifications of table
    [i].  Returns the meter delta attributable to the batch.  [k = 0] is a
    free no-op.  Raises [Invalid_argument] if [k] exceeds the pending count
    or a deletion targets a missing tuple (inconsistent stream).

    [path] overrides the physical delta-join path for this batch only:
    [`Scan] forces the shared-scan-with-batch-hash path even when the
    partner is indexed; [`Index] uses the index whenever one exists,
    ignoring {!Viewdef.force_scan} hints.  The default ([None]) keeps the
    view's own routing.  Partitioned maintenance uses this to give heavy
    keys the eager indexed path and light keys the batched scan path; the
    view content is identical either way — only the metered cost moves.

    Under [First_order] the batch is delta-joined against the other base
    tables (the metered path is unchanged from previous releases).  Under
    [Higher_order] the view delta is probed out of table [i]'s
    materialized {!Deltaview} (hash probes + index-entry retrievals — flat
    in the partner sizes), after which the batch is folded into the other
    tables' delta views and applied to base table [i].

    When the {!Telemetry} collector is enabled each batch runs inside a
    ["maintainer.process"] span (attrs [table], [k]) and books the meter
    delta as the [meter.*] counter family labelled by table, plus
    [maintainer.batches], [maintainer.cost_units] and the
    [maintainer.batch_size] histogram. *)

val process_at_most :
  ?path:[ `Index | `Scan ] -> t -> int -> int -> int * Relation.Meter.snapshot
(** [process_at_most m i k] processes [min k (pending_size m i)]
    modifications and returns the count actually processed with the
    meter delta — the forgiving variant used by rescue and recovery
    paths.  Raises [Invalid_argument] only on a bad index or negative
    [k]. *)

val pending_changes : t -> int -> Change.t list
(** Table [i]'s delta queue in arrival order, without removing anything
    — what a checkpoint persists. *)

val refresh : t -> Relation.Meter.snapshot
(** Process everything pending in every table (one batch per table) —
    the view is up to date afterwards. *)

val rows : t -> Relation.Tuple.t list
(** Current materialized rows, sorted, with multiplicity. *)

val output_schema : t -> Relation.Schema.t

val check_consistent : t -> (unit, string) result
(** Compare the incrementally maintained content against a from-scratch
    evaluation over the (processed) base tables.  Under [Higher_order]
    every materialized delta view is also checked against a recompute of
    its sub-join. *)

val delta_view : t -> Deltaview.t option
(** The materialized delta views ([Some] iff the maintenance order is
    [Higher_order]) — exposed for memory accounting in benches. *)
