module Thash = Hashtbl.Make (struct
  type t = Relation.Tuple.t

  let equal = Relation.Tuple.equal
  let hash = Relation.Tuple.hash
end)

type expander =
  scope:bool array ->
  delta:int ->
  (Relation.Tuple.t * int) list ->
  (Relation.Tuple.t option array * int) list

(* One maintained sub-join: the component's tables joined among
   themselves, keyed by the values the owner table joins against.  Rows
   are stored as the concatenation of each member table's tuple in
   ascending table order ("subtuples"), with multiplicity. *)
type comp = {
  members : int array;  (* ascending table indices *)
  member : bool array;  (* length n; the expansion scope *)
  anchor_owner_pos : int array;
      (* per anchor edge: join column's position in the owner schema *)
  anchor_sub_pos : int array;
      (* per anchor edge: join column's position in the subtuple *)
  offsets : int array;  (* per table: slice offset in the subtuple, -1 *)
  rows : int Thash.t Thash.t;  (* anchor key -> subtuple -> count *)
}

type per_owner = { comps : comp array }

type t = {
  view : Viewdef.t;
  meter : Relation.Meter.t;
  owners : per_owner array;
  global_off : int array;  (* per table: slice offset in the joined row *)
  arities : int array;
  total_arity : int;
}

(* Connected components of the join graph with [owner] removed.  The view
   graph is connected, so every component touches [owner] through at least
   one anchor edge. *)
let components_of view owner =
  let n = Viewdef.n_tables view in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Viewdef.join_edge) ->
      if e.left <> owner && e.right <> owner then begin
        adj.(e.left) <- e.right :: adj.(e.left);
        adj.(e.right) <- e.left :: adj.(e.right)
      end)
    (Viewdef.join_edges view);
  let comp_id = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if i <> owner && comp_id.(i) < 0 then begin
      let id = !next in
      incr next;
      let rec dfs j =
        if comp_id.(j) < 0 then begin
          comp_id.(j) <- id;
          List.iter dfs adj.(j)
        end
      in
      dfs i
    end
  done;
  let members = Array.make !next [] in
  for i = n - 1 downto 0 do
    if i <> owner then members.(comp_id.(i)) <- i :: members.(comp_id.(i))
  done;
  (comp_id, Array.map Array.of_list members)

let make_comp view ~owner ~comp_id ~members =
  let n = Viewdef.n_tables view in
  let tables = Viewdef.tables view in
  let member = Array.make n false in
  Array.iter (fun i -> member.(i) <- true) members;
  let offsets = Array.make n (-1) in
  let acc = ref 0 in
  Array.iter
    (fun i ->
      offsets.(i) <- !acc;
      acc := !acc + Relation.Schema.arity (Relation.Table.schema tables.(i)))
    members;
  let id = comp_id.(members.(0)) in
  let anchors =
    List.filter
      (fun (e : Viewdef.join_edge) -> comp_id.(e.right) = id)
      (Viewdef.edges_of_table view owner)
  in
  let anchor_owner_pos =
    Array.of_list
      (List.map
         (fun (e : Viewdef.join_edge) ->
           Relation.Schema.index_of (Relation.Table.schema tables.(owner)) e.left_col)
         anchors)
  in
  let anchor_sub_pos =
    Array.of_list
      (List.map
         (fun (e : Viewdef.join_edge) ->
           offsets.(e.right)
           + Relation.Schema.index_of (Relation.Table.schema tables.(e.right)) e.right_col)
         anchors)
  in
  { members; member; anchor_owner_pos; anchor_sub_pos; offsets; rows = Thash.create 64 }

let key_of_owner comp tuple =
  Array.map (fun p -> Relation.Tuple.get tuple p) comp.anchor_owner_pos

let key_of_sub comp sub =
  Array.map (fun p -> Relation.Tuple.get sub p) comp.anchor_sub_pos

let subtuple_of_bindings t comp bindings =
  let out = Array.make (Array.fold_left (fun a i -> a + t.arities.(i)) 0 comp.members) Relation.Value.Null in
  Array.iter
    (fun i ->
      match bindings.(i) with
      | Some tuple -> Array.blit tuple 0 out comp.offsets.(i) t.arities.(i)
      | None ->
          invalid_arg "Deltaview: expansion left a component table unbound")
    comp.members;
  out

let merge comp key sub count =
  let inner =
    match Thash.find_opt comp.rows key with
    | Some h -> h
    | None ->
        let h = Thash.create 4 in
        Thash.add comp.rows key h;
        h
  in
  let current = match Thash.find_opt inner sub with Some c -> c | None -> 0 in
  let updated = current + count in
  if updated < 0 then
    invalid_arg "Deltaview: sub-join tuple multiplicity would go negative";
  if updated = 0 then begin
    Thash.remove inner sub;
    if Thash.length inner = 0 then Thash.remove comp.rows key
  end
  else Thash.replace inner sub updated

(* Recompute one component's content from the current base tables: seed
   the expansion with every row of the smallest-index member and join
   across the component's own edges. *)
let rebuild_comp t comp ~expand =
  Thash.reset comp.rows;
  let seed = comp.members.(0) in
  let table = (Viewdef.tables t.view).(seed) in
  let deltas =
    List.map (fun tuple -> (tuple, 1)) (Relation.Table.to_list table)
  in
  List.iter
    (fun (bindings, sign) ->
      let sub = subtuple_of_bindings t comp bindings in
      merge comp (key_of_sub comp sub) sub sign)
    (expand ~scope:comp.member ~delta:seed deltas)

let create ~meter ~expand view =
  let n = Viewdef.n_tables view in
  let tables = Viewdef.tables view in
  let arities =
    Array.map (fun tbl -> Relation.Schema.arity (Relation.Table.schema tbl)) tables
  in
  let global_off = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    global_off.(i) <- !acc;
    acc := !acc + arities.(i)
  done;
  let owners =
    Array.init n (fun owner ->
        let comp_id, members = components_of view owner in
        {
          comps =
            Array.map (fun ms -> make_comp view ~owner ~comp_id ~members:ms) members;
        })
  in
  let t =
    { view; meter; owners; global_off; arities; total_arity = !acc }
  in
  Array.iter
    (fun po -> Array.iter (fun comp -> rebuild_comp t comp ~expand) po.comps)
    owners;
  t

(* Signed joined-row contributions of a batch from [owner]: per delta
   tuple, one hash probe per component (each matched entry is an
   index-like retrieval), then the cross product of the per-component
   matches assembled into full joined rows.  The multiplicity of a joined
   row is the delta's sign times the product of the matched sub-join
   multiplicities. *)
let contributions t owner deltas =
  let po = t.owners.(owner) in
  let nc = Array.length po.comps in
  let out = ref [] in
  List.iter
    (fun (tuple, sign) ->
      let matches =
        Array.map
          (fun comp ->
            Relation.Meter.bump_hash_probe t.meter 1;
            match Thash.find_opt comp.rows (key_of_owner comp tuple) with
            | None -> [||]
            | Some inner ->
                let l = Thash.fold (fun sub c acc -> (sub, c) :: acc) inner [] in
                Relation.Meter.bump_index_entries t.meter (List.length l);
                Array.of_list l)
          po.comps
      in
      if Array.for_all (fun a -> Array.length a > 0) matches then begin
        let row = Array.make t.total_arity Relation.Value.Null in
        Array.blit tuple 0 row t.global_off.(owner) t.arities.(owner);
        let rec cross ci count =
          if ci = nc then out := (Array.copy row, count) :: !out
          else
            Array.iter
              (fun (sub, c) ->
                Array.iter
                  (fun m ->
                    Array.blit sub po.comps.(ci).offsets.(m) row t.global_off.(m)
                      t.arities.(m))
                  po.comps.(ci).members;
                cross (ci + 1) (count * c))
              matches.(ci)
        in
        cross 0 sign
      end)
    deltas;
  List.rev !out

(* Second-order maintenance: a processed batch of [delta] updates, for
   every other owner, the one component that contains [delta] — by
   expanding the batch across that component's own edges (the other member
   tables are still at their pre-batch state) and merging the resulting
   subtuples.  Components are scope sets; owners sharing the same
   component reuse one expansion. *)
let update t ~delta deltas ~expand =
  let n = Array.length t.owners in
  let memo : (bool array * (Relation.Tuple.t option array * int) list) list ref =
    ref []
  in
  let expansion comp =
    match
      List.find_opt (fun (m, _) -> m == comp.member || m = comp.member) !memo
    with
    | Some (_, partials) -> partials
    | None ->
        let partials = expand ~scope:comp.member ~delta deltas in
        memo := (comp.member, partials) :: !memo;
        partials
  in
  for owner = 0 to n - 1 do
    if owner <> delta then begin
      let po = t.owners.(owner) in
      Array.iter
        (fun comp ->
          if comp.member.(delta) then
            List.iter
              (fun (bindings, sign) ->
                let sub = subtuple_of_bindings t comp bindings in
                Relation.Meter.bump_hash_build t.meter 1;
                merge comp (key_of_sub comp sub) sub sign)
              (expansion comp))
        po.comps
    end
  done

let entries t =
  Array.fold_left
    (fun acc po ->
      Array.fold_left
        (fun acc comp ->
          Thash.fold (fun _ inner acc -> acc + Thash.length inner) comp.rows acc)
        acc po.comps)
    0 t.owners

(* Compare every maintained component against a from-scratch recompute of
   the same sub-join over the current base tables. *)
let check t ~expand =
  let errors = ref [] in
  Array.iteri
    (fun owner po ->
      Array.iteri
        (fun ci comp ->
          let fresh =
            {
              comp with
              rows = Thash.create (max 16 (Thash.length comp.rows));
            }
          in
          rebuild_comp t fresh ~expand;
          let mismatch = ref false in
          let probe a b =
            Thash.iter
              (fun key inner ->
                match Thash.find_opt b key with
                | None -> mismatch := true
                | Some other ->
                    Thash.iter
                      (fun sub c ->
                        if Thash.find_opt other sub <> Some c then
                          mismatch := true)
                      inner)
              a
          in
          probe comp.rows fresh.rows;
          probe fresh.rows comp.rows;
          if !mismatch then
            errors :=
              Printf.sprintf
                "delta view d(%s)/d(%s): component %d diverged from recompute"
                (Viewdef.name t.view)
                (Relation.Table.name (Viewdef.tables t.view).(owner))
                ci
              :: !errors)
        po.comps)
    t.owners;
  match !errors with [] -> Ok () | e :: _ -> Error e
