type join_edge = {
  left : int;
  left_col : string;
  right : int;
  right_col : string;
}

type join_order = Fixed | Adaptive
type order = First_order | Higher_order

let order_name = function
  | First_order -> "first-order"
  | Higher_order -> "higher-order"

let order_of_name = function
  | "first-order" -> Some First_order
  | "higher-order" -> Some Higher_order
  | _ -> None

type t = {
  name : string;
  tables : Relation.Table.t array;
  aliases : string array;
  join : join_edge list;
  filter : Relation.Expr.t option;
  group_by : string list;
  aggs : Relation.Agg.spec list;
  projection : string list option;
  scan_hints : (int * int) list;
  join_order : join_order;
  order : order;
  joined_schema : Relation.Schema.t;
}

let check_connected n join =
  if n > 1 then begin
    let adj = Array.make n [] in
    List.iter
      (fun e ->
        adj.(e.left) <- e.right :: adj.(e.left);
        adj.(e.right) <- e.left :: adj.(e.right))
      join;
    let visited = Array.make n false in
    let rec dfs i =
      if not visited.(i) then begin
        visited.(i) <- true;
        List.iter dfs adj.(i)
      end
    in
    dfs 0;
    if not (Array.for_all (fun v -> v) visited) then
      invalid_arg "Viewdef.make: join graph is not connected"
  end

let make ~name ~tables ?aliases ~join ?filter ?group_by ?aggs ?projection
    ?(scan_hints = []) ?(join_order = Fixed) ?(order = First_order) () =
  let n = Array.length tables in
  if n = 0 then invalid_arg "Viewdef.make: no tables";
  let aliases =
    match aliases with
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Viewdef.make: aliases length mismatch";
        a
    | None -> Array.map Relation.Table.name tables
  in
  List.iter
    (fun e ->
      if e.left < 0 || e.left >= n || e.right < 0 || e.right >= n then
        invalid_arg "Viewdef.make: join edge references unknown table";
      if e.left = e.right then
        invalid_arg "Viewdef.make: self-join edges are not supported";
      (* Column existence check (raises if unknown). *)
      ignore
        (Relation.Schema.index_of
           (Relation.Table.schema tables.(e.left))
           e.left_col);
      ignore
        (Relation.Schema.index_of
           (Relation.Table.schema tables.(e.right))
           e.right_col))
    join;
  check_connected n join;
  (* Parallel edges (a second equality between an already-linked table
     pair) would be silently ignored by the single-edge-per-expansion
     delta join; demand they be written as filter conjuncts instead. *)
  let seen_pairs = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let pair = (min e.left e.right, max e.left e.right) in
      if Hashtbl.mem seen_pairs pair then
        invalid_arg
          "Viewdef.make: parallel join edges between the same tables; express \
           the extra equality as a filter conjunct";
      Hashtbl.add seen_pairs pair ())
    join;
  let group_by = match group_by with Some g -> g | None -> [] in
  let aggs = match aggs with Some a -> a | None -> [] in
  if aggs = [] && group_by <> [] then
    invalid_arg "Viewdef.make: group_by without aggregates";
  if aggs <> [] && projection <> None then
    invalid_arg "Viewdef.make: aggregates and projection are exclusive";
  let joined_schema =
    Array.to_list tables
    |> List.mapi (fun i table ->
           Relation.Schema.qualify aliases.(i) (Relation.Table.schema table))
    |> List.fold_left
         (fun acc s ->
           match acc with
           | None -> Some s
           | Some a -> Some (Relation.Schema.concat a s))
         None
    |> Option.get
  in
  (* Validate column references against the joined schema. *)
  (match filter with
  | Some f ->
      List.iter
        (fun c -> ignore (Relation.Schema.index_of joined_schema c))
        (Relation.Expr.columns f)
  | None -> ());
  List.iter
    (fun c -> ignore (Relation.Schema.index_of joined_schema c))
    group_by;
  (match projection with
  | Some cols ->
      List.iter
        (fun c -> ignore (Relation.Schema.index_of joined_schema c))
        cols
  | None -> ());
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Viewdef.make: scan hint references unknown table")
    scan_hints;
  {
    name;
    tables;
    aliases;
    join;
    filter;
    group_by;
    aggs;
    projection;
    scan_hints;
    join_order;
    order;
    joined_schema;
  }

let name v = v.name
let tables v = v.tables
let n_tables v = Array.length v.tables
let alias v i = v.aliases.(i)
let join_edges v = v.join
let filter v = v.filter
let group_by v = v.group_by
let aggs v = v.aggs
let projection v = v.projection
let joined_schema v = v.joined_schema

let output_schema v =
  if v.aggs <> [] then begin
    let group_cols =
      List.map
        (fun name ->
          let i = Relation.Schema.index_of v.joined_schema name in
          ( Relation.Schema.column_name v.joined_schema i,
            Relation.Schema.column_type v.joined_schema i ))
        v.group_by
    in
    let agg_cols =
      List.map
        (fun (spec : Relation.Agg.spec) ->
          (spec.as_name, Relation.Agg.output_type v.joined_schema spec.func))
        v.aggs
    in
    Relation.Schema.make (group_cols @ agg_cols)
  end
  else
    match v.projection with
    | Some cols -> fst (Relation.Schema.project v.joined_schema cols)
    | None -> v.joined_schema

let joined_plan v =
  let n = Array.length v.tables in
  (* Left-deep join tree in table order; each new table must connect to an
     already-joined one (guaranteed for connected graphs after reordering,
     but table order may not be a valid build order, so BFS from table 0). *)
  let added = Array.make n false in
  let plan = ref (Relation.Ra.scan ~alias:v.aliases.(0) v.tables.(0)) in
  added.(0) <- true;
  let remaining = ref (n - 1) in
  while !remaining > 0 do
    (* Find an edge with exactly one endpoint added. *)
    let edge =
      List.find_opt
        (fun e -> added.(e.left) <> added.(e.right))
        v.join
    in
    match edge with
    | None ->
        (* Disconnected graphs are rejected by [make]; n = 1 never enters. *)
        invalid_arg "Viewdef.reference_plan: no connecting edge"
    | Some e ->
        let new_table, new_col, old_table, old_col =
          if added.(e.left) then (e.right, e.right_col, e.left, e.left_col)
          else (e.left, e.left_col, e.right, e.right_col)
        in
        let scan = Relation.Ra.scan ~alias:v.aliases.(new_table) v.tables.(new_table) in
        let left_col = v.aliases.(old_table) ^ "." ^ old_col in
        let right_col = v.aliases.(new_table) ^ "." ^ new_col in
        plan :=
          Relation.Ra.equijoin ~on:[ (left_col, right_col) ] !plan scan;
        added.(new_table) <- true;
        decr remaining
  done;
  (* The joined column order from a left-deep tree differs from the
     canonical joined schema when the BFS order differs from table order;
     re-project into canonical order. *)
  let canonical =
    Array.to_list
      (Array.map
         (fun (c : Relation.Schema.column) -> c.name)
         (Relation.Schema.columns v.joined_schema))
  in
  let joined = Relation.Ra.project canonical !plan in
  match v.filter with
  | Some f -> Relation.Ra.select f joined
  | None -> joined

let reference_plan v =
  let filtered = joined_plan v in
  if v.aggs <> [] then
    Relation.Ra.aggregate ~group_by:v.group_by v.aggs filtered
  else
    match v.projection with
    | Some cols -> Relation.Ra.project cols filtered
    | None -> filtered

let force_scan v ~delta ~partner =
  List.exists (fun (a, b) -> a = delta && b = partner) v.scan_hints

let join_order v = v.join_order
let order v = v.order
let with_order v order = { v with order }

let edges_of_table v i =
  List.filter_map
    (fun e ->
      if e.left = i then Some e
      else if e.right = i then
        Some
          { left = i; left_col = e.right_col; right = e.left; right_col = e.left_col }
      else None)
    v.join
