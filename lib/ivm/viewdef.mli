(** Materialized view definitions: select / equi-join / project views over
    [n] base tables, optionally topped by grouped aggregation.

    Columns in [filter], [group_by], [aggs] and [projection] refer to the
    *joined schema*: the concatenation of every base table's schema
    qualified by its alias, in table order.  The join graph must be
    connected. *)

type join_edge = {
  left : int;  (** table index *)
  left_col : string;  (** unqualified column in the left table *)
  right : int;
  right_col : string;
}

type t

type join_order =
  | Fixed  (** expand along the first listed edge with a bound endpoint —
               the edge list order is the maintenance join order *)
  | Adaptive
      (** pick the next expansion edge by estimated cost: indexed partners
          by expected probe fan-out, unindexed partners by table size —
          what a cost-based optimizer would emit *)

type order =
  | First_order
      (** classic delta-join maintenance: each batch re-joins its delta
          against the other base tables (the paper's setting) *)
  | Higher_order
      (** DBToaster-style second-order deltas: per base table, the view's
          first-order delta query [d(V)/d(R_i)] is itself materialized
          ({!Maintainer} keeps one {!Deltaview} per table), so applying a
          batch is a hash lookup-and-merge instead of a delta join — the
          batch cost curves [f_i(k)] become flat, index-like *)

val order_name : order -> string
(** ["first-order"] / ["higher-order"] — stable labels for telemetry,
    bench JSON and CLI flags. *)

val order_of_name : string -> order option
(** Inverse of {!order_name} — for manifests and CLI flags. *)

val make :
  name:string ->
  tables:Relation.Table.t array ->
  ?aliases:string array ->
  join:join_edge list ->
  ?filter:Relation.Expr.t ->
  ?group_by:string list ->
  ?aggs:Relation.Agg.spec list ->
  ?projection:string list ->
  ?scan_hints:(int * int) list ->
  ?join_order:join_order ->
  ?order:order ->
  unit ->
  t
(** Raises [Invalid_argument] when the join graph is disconnected (for two
    or more tables), an edge references unknown tables/columns, or both
    [aggs] and [projection] are given.

    [scan_hints] lists [(delta_table, partner)] pairs: when maintaining a
    delta batch of [delta_table], expansion into [partner] must use the
    shared-scan strategy even when [partner] has a usable index — modelling
    a maintenance statement that loads/hashes the partner once per batch
    (the paper's "small joining tables are loaded into memory" effect,
    which makes that delta's cost curve flat in the batch size). *)

val name : t -> string
val tables : t -> Relation.Table.t array
val n_tables : t -> int
val alias : t -> int -> string
val join_edges : t -> join_edge list
val filter : t -> Relation.Expr.t option
val group_by : t -> string list
val aggs : t -> Relation.Agg.spec list
val projection : t -> string list option

val joined_schema : t -> Relation.Schema.t
(** Concatenation of qualified base schemas in table order. *)

val output_schema : t -> Relation.Schema.t

val reference_plan : t -> Relation.Ra.t
(** A from-scratch evaluation plan for the view — ground truth for
    consistency checks and initial materialization. *)

val joined_plan : t -> Relation.Ra.t
(** Like {!reference_plan} but stopping before aggregation/projection: the
    filtered join result in canonical joined-schema column order.  Used to
    seed incremental state. *)

val edges_of_table : t -> int -> join_edge list
(** Edges incident to a table (normalized so [left] is that table). *)

val force_scan : t -> delta:int -> partner:int -> bool
(** Whether a scan hint covers expanding into [partner] while maintaining a
    batch from [delta]. *)

val join_order : t -> join_order
(** The configured expansion-order policy (default [Fixed]). *)

val order : t -> order
(** The configured maintenance order (default [First_order]). *)

val with_order : t -> order -> t
(** The same view definition under a different maintenance order — the
    seam calibration uses to meter both paths over one logical view. *)
