(** Synthetic two-table join dataset reproducing the paper's §1 / Fig. 1
    setting: a view [R ⋈ S] where R is indexed on the join attribute and S
    is not.

    Consequences in the engine: a ΔS batch probes R's index per tuple
    (cost linear in the batch, the paper's [c_ΔS]); a ΔR batch triggers one
    shared scan of S with a hash built over the batch (cost nearly flat in
    the batch size, the paper's [c_ΔR]). *)

type db2 = {
  r : Relation.Table.t;
  s : Relation.Table.t;
  meter : Relation.Meter.t;
}

val generate :
  ?seed:int -> r_rows:int -> s_rows:int -> ?join_domain:int -> unit -> db2
(** [join_domain] (default [max r_rows s_rows / 4], at least 1) is the
    number of distinct join values; smaller domains mean higher join
    fan-out. *)

val join_view : db2 -> Ivm.Viewdef.t
(** [R ⋈ S] as a COUNT aggregate view (planner table 0 = R, 1 = S). *)

val insert_feeds : seed:int -> db2 -> Updates.feeds
(** Insertion streams for both tables (the §1 example uses insertions). *)

val zipf_feeds : seed:int -> ?exponent:float -> db2 -> Updates.feeds
(** Skewed insertion streams: join keys are drawn Zipfian over the
    recovered join domain (rank 0 hottest, weight [∝ 1/(rank+1)^exponent],
    default exponent [1.0]) instead of uniformly, so a few hot keys carry
    most of the join fan-out — the adversarial case for per-tuple probing
    and the stress stream of the [ho] bench.  Deterministic in [seed]. *)
