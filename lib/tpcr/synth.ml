open Relation

type db2 = { r : Table.t; s : Table.t; meter : Meter.t }

let r_schema =
  Schema.make
    [ ("rk", Datatype.TInt); ("jk", Datatype.TInt); ("rval", Datatype.TFloat) ]

let s_schema =
  Schema.make
    [ ("sk", Datatype.TInt); ("jk", Datatype.TInt); ("sval", Datatype.TFloat) ]

let generate ?(seed = 7) ~r_rows ~s_rows ?join_domain () =
  if r_rows < 0 || s_rows < 0 then invalid_arg "Synth.generate: negative sizes";
  let domain =
    match join_domain with
    | Some d ->
        if d <= 0 then invalid_arg "Synth.generate: join_domain must be positive";
        d
    | None -> max 1 (max r_rows s_rows / 4)
  in
  let prng = Util.Prng.create ~seed in
  let meter = Meter.create () in
  let r = Table.create ~meter ~name:"r" ~schema:r_schema () in
  let s = Table.create ~meter ~name:"s" ~schema:s_schema () in
  for i = 1 to r_rows do
    ignore
      (Table.insert r
         [|
           Value.Int i;
           Value.Int (Util.Prng.int prng domain);
           Value.Float (Util.Prng.float prng 100.0);
         |])
  done;
  for i = 1 to s_rows do
    ignore
      (Table.insert s
         [|
           Value.Int i;
           Value.Int (Util.Prng.int prng domain);
           Value.Float (Util.Prng.float prng 100.0);
         |])
  done;
  (* The asymmetry: R is indexed on the join attribute, S is not. *)
  Table.create_index r "jk";
  Meter.reset meter;
  { r; s; meter }

let join_view db =
  Ivm.Viewdef.make ~name:"r_join_s" ~tables:[| db.r; db.s |]
    ~join:[ { Ivm.Viewdef.left = 0; left_col = "jk"; right = 1; right_col = "jk" } ]
    ~aggs:[ Agg.count "pairs" ]
    ()

let insert_feeds ~seed db =
  let root = Util.Prng.create ~seed in
  let r_prng = Util.Prng.split root and s_prng = Util.Prng.split root in
  let domain_of table =
    (* Recover the domain from current contents; inserts stay within it. *)
    List.fold_left
      (fun acc t -> max acc (Value.as_int (Tuple.get t 1)))
      0
      (Table.to_list_unmetered table)
    + 1
  in
  let r_domain = domain_of db.r and s_domain = domain_of db.s in
  let next_key = Array.make 2 1_000_000_000 in
  let next i =
    let fresh () =
      next_key.(i) <- next_key.(i) + 1;
      next_key.(i)
    in
    match i with
    | 0 ->
        Ivm.Change.Insert
          [|
            Value.Int (fresh ());
            Value.Int (Util.Prng.int r_prng (max r_domain s_domain));
            Value.Float (Util.Prng.float r_prng 100.0);
          |]
    | 1 ->
        Ivm.Change.Insert
          [|
            Value.Int (fresh ());
            Value.Int (Util.Prng.int s_prng (max r_domain s_domain));
            Value.Float (Util.Prng.float s_prng 100.0);
          |]
    | _ -> invalid_arg "Synth.insert_feeds: only tables 0 and 1 exist"
  in
  { Updates.next }

let zipf_feeds ~seed ?(exponent = 1.0) db =
  let root = Util.Prng.create ~seed in
  let r_prng = Util.Prng.split root and s_prng = Util.Prng.split root in
  let domain_of table =
    List.fold_left
      (fun acc t -> max acc (Value.as_int (Tuple.get t 1)))
      0
      (Table.to_list_unmetered table)
    + 1
  in
  let domain = max (domain_of db.r) (domain_of db.s) in
  let sample = Util.Prng.zipf_sampler ~exponent ~n:domain in
  let next_key = Array.make 2 2_000_000_000 in
  let next i =
    let fresh () =
      next_key.(i) <- next_key.(i) + 1;
      next_key.(i)
    in
    match i with
    | 0 ->
        Ivm.Change.Insert
          [|
            Value.Int (fresh ());
            Value.Int (sample r_prng);
            Value.Float (Util.Prng.float r_prng 100.0);
          |]
    | 1 ->
        Ivm.Change.Insert
          [|
            Value.Int (fresh ());
            Value.Int (sample s_prng);
            Value.Float (Util.Prng.float s_prng 100.0);
          |]
    | _ -> invalid_arg "Synth.zipf_feeds: only tables 0 and 1 exist"
  in
  { Updates.next }
