(** Admission control for the multi-tenant service.

    A pure policy: at most [max_active] tenants run concurrently;
    registrations beyond that wait in a bounded FIFO queue of
    [max_queued]; past both bounds (or with an invalid/duplicate name)
    the registration is rejected outright.  {!Service} promotes queued
    tenants as active ones complete their horizons. *)

type config = { max_active : int; max_queued : int }

val default : config
(** [max_active = 8], [max_queued = 8]. *)

type decision = Admit | Queue | Reject of string

val describe : decision -> string

val decide :
  config -> active:int -> queued:int -> known:string list -> string -> decision
(** [decide config ~active ~queued ~known name] — [known] is every name
    already registered (active, queued or completed); duplicates are
    rejected, never queued.  Raises [Invalid_argument] if
    [config.max_active < 1]. *)
