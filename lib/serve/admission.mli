(** Admission control for the multi-tenant service.

    A pure policy: at most [max_active] tenants run concurrently;
    registrations beyond that wait in a bounded FIFO queue of
    [max_queued]; past both bounds (or with an invalid/duplicate name)
    the registration is rejected outright.  {!Service} promotes queued
    tenants as active ones complete their horizons.

    Memory accounting: higher-order tenants materialize {!Ivm.Deltaview}
    structures whose size ([Deltaview.entries], summed over active
    tenants) is charged against [max_delta_entries].  A registration that
    arrives while the budget is exhausted queues instead of admitting —
    it is promoted once enough materialization is released. *)

type config = {
  max_active : int;
  max_queued : int;
  max_delta_entries : int;
      (** budget on the summed delta-view entries of active tenants;
          [max_int] disables the accounting *)
}

val default : config
(** [max_active = 8], [max_queued = 8], [max_delta_entries = max_int]. *)

type decision = Admit | Queue | Reject of string

val describe : decision -> string

val decide :
  config ->
  active:int ->
  queued:int ->
  delta_entries:int ->
  known:string list ->
  string ->
  decision
(** [decide config ~active ~queued ~delta_entries ~known name] — [known]
    is every name already registered (active, queued or completed);
    duplicates are rejected, never queued.  [delta_entries] is the
    current materialization charge of the active tenants.  Raises
    [Invalid_argument] if [config.max_active < 1] or
    [config.max_delta_entries < 0]. *)
