type config = {
  admission : Admission.config;
  coordinate : bool;
  discount_factor : float;
  shed_budget : float option;
  sync : Durable.Wal.sync;
  hook : Durable.Hook.point -> unit;
}

let default_config =
  {
    admission = Admission.default;
    coordinate = true;
    discount_factor = 0.0;
    shed_budget = None;
    sync = Durable.Wal.Always;
    hook = Durable.Hook.none;
  }

type tenant_outcome = {
  tenant : string;
  steps : int;
  metered_cost : float;
  charged_cost : float;
  violations : int;
  violation_rate : float;
  sheds : int;
  reanchors : int;
  consistent : bool;
  replayed : int;
}

type outcome = {
  tenants : tenant_outcome list;
  rounds : int;
  aggregate_charged : float;
  aggregate_undiscounted : float;
  co_flushes : int;
  worst_violation_rate : float;
  rejected : int;
  queued_peak : int;
}

type t = {
  root : string;
  config : config;
  pool : Parallel.Pool.t option;
  mutable active : Tenant.t list;  (* registration order *)
  mutable waiting : Tenant.config list;  (* FIFO, creation deferred *)
  mutable completed : (Tenant.t * bool) list;  (* newest first *)
  mutable known : string list;
  mutable starts : (string * int) list;  (* admission round per tenant *)
  mutable rejected : int;
  mutable queued_peak : int;
  mutable rounds : int;
  mutable agg_charged : float;
  mutable agg_raw : float;
  mutable co_flushes : int;
}

(* --- service manifest ----------------------------------------------------- *)

let sync_to_string = function
  | Durable.Wal.Always -> "always"
  | Durable.Wal.Never -> "never"
  | Durable.Wal.Interval n -> Printf.sprintf "interval:%d" n

let sync_of_string text =
  match String.lowercase_ascii text with
  | "always" -> Ok Durable.Wal.Always
  | "never" -> Ok Durable.Wal.Never
  | other -> (
      match String.index_opt other ':' with
      | Some i when String.sub other 0 i = "interval" -> (
          match
            int_of_string_opt
              (String.sub other (i + 1) (String.length other - i - 1))
          with
          | Some n when n > 0 -> Ok (Durable.Wal.Interval n)
          | _ -> Error (Printf.sprintf "bad sync policy %S" text))
      | _ -> Error (Printf.sprintf "bad sync policy %S" text))

(* The root manifest pins everything recovery needs to continue the run
   identically: the scheduler's coordination parameters and the admitted
   tenants in registration order (coordination iterates tenants in that
   order, so the order is part of the deterministic state), each with the
   round it was admitted at — a tenant's local step [k] always executes
   at global round [start + k], which recovery re-establishes. *)
let service_params t =
  [
    ("kind", "serve");
    ("coordinate", string_of_bool t.config.coordinate);
    ("discount_factor", Printf.sprintf "%h" t.config.discount_factor);
    ( "shed_budget",
      match t.config.shed_budget with
      | None -> "none"
      | Some b -> Printf.sprintf "%h" b );
    ("sync", sync_to_string t.config.sync);
    ("max_active", string_of_int t.config.admission.Admission.max_active);
    ("max_queued", string_of_int t.config.admission.Admission.max_queued);
    ( "max_delta_entries",
      string_of_int t.config.admission.Admission.max_delta_entries );
    ( "tenants",
      String.concat ";"
        (List.map
           (fun (name, start) -> Printf.sprintf "%s:%d" name start)
           t.starts) );
  ]

let save_manifest t =
  Durable.Manifest.save ~dir:t.root
    (Durable.Manifest.empty ~params:(service_params t))

let config_of_params params =
  let ( let* ) = Result.bind in
  let find key =
    match List.assoc_opt key params with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "service params missing %S" key)
  in
  let int_param key =
    Result.bind (find key) (fun v ->
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "bad %s parameter %S" key v))
  in
  let* kind = find "kind" in
  let* () =
    if kind = "serve" then Ok ()
    else Error (Printf.sprintf "not a serve directory (kind %S)" kind)
  in
  let* coordinate =
    Result.bind (find "coordinate") (fun v ->
        match bool_of_string_opt v with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "bad coordinate parameter %S" v))
  in
  let* discount_factor =
    Result.bind (find "discount_factor") (fun v ->
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad discount_factor parameter %S" v))
  in
  let* shed_budget =
    Result.bind (find "shed_budget") (fun v ->
        if v = "none" then Ok None
        else
          match float_of_string_opt v with
          | Some f -> Ok (Some f)
          | None -> Error (Printf.sprintf "bad shed_budget parameter %S" v))
  in
  let* sync = Result.bind (find "sync") sync_of_string in
  let* max_active = int_param "max_active" in
  let* max_queued = int_param "max_queued" in
  (* Pre-budget manifests have no entry: unlimited, as before. *)
  let* max_delta_entries =
    match List.assoc_opt "max_delta_entries" params with
    | None -> Ok max_int
    | Some _ -> int_param "max_delta_entries"
  in
  let* tenants =
    Result.bind (find "tenants") (fun v ->
        let entries =
          List.filter (fun s -> s <> "") (String.split_on_char ';' v)
        in
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            match String.index_opt entry ':' with
            | Some i -> (
                let name = String.sub entry 0 i in
                match
                  int_of_string_opt
                    (String.sub entry (i + 1) (String.length entry - i - 1))
                with
                | Some s when s >= 0 -> Ok ((name, s) :: acc)
                | _ -> Error (Printf.sprintf "bad tenant entry %S" entry))
            | None -> Ok ((entry, 0) :: acc))
          (Ok []) entries
        |> Result.map List.rev)
  in
  Ok
    ( {
        admission = { Admission.max_active; max_queued; max_delta_entries };
        coordinate;
        discount_factor;
        shed_budget;
        sync;
        hook = Durable.Hook.none;
      },
      tenants )

(* --- lifecycle ------------------------------------------------------------ *)

let create ?pool ~root config =
  if config.discount_factor < 0.0 then
    invalid_arg "Service: discount_factor must be >= 0";
  Durable.Fsutil.mkdirs root;
  let t =
    {
      root;
      config;
      pool;
      active = [];
      waiting = [];
      completed = [];
      known = [];
      starts = [];
      rejected = 0;
      queued_peak = 0;
      rounds = 0;
      agg_charged = 0.0;
      agg_raw = 0.0;
      co_flushes = 0;
    }
  in
  save_manifest t;
  t

let admit t cfg =
  match Tenant.create ~root:t.root ~sync:t.config.sync cfg with
  | Error e -> Error e
  | Ok tenant ->
      t.active <- t.active @ [ tenant ];
      t.known <- cfg.Tenant.name :: t.known;
      t.starts <- t.starts @ [ (cfg.Tenant.name, t.rounds) ];
      save_manifest t;
      Ok ()

let delta_entries_in_use t =
  List.fold_left (fun acc tenant -> acc + Tenant.delta_entries tenant) 0
    t.active

let register t cfg =
  let decision =
    Admission.decide t.config.admission ~active:(List.length t.active)
      ~queued:(List.length t.waiting)
      ~delta_entries:(delta_entries_in_use t) ~known:t.known cfg.Tenant.name
  in
  match decision with
  | Admission.Admit ->
      Result.map (fun () -> Admission.Admit) (admit t cfg)
  | Admission.Queue ->
      t.waiting <- t.waiting @ [ cfg ];
      t.known <- cfg.Tenant.name :: t.known;
      t.queued_peak <- max t.queued_peak (List.length t.waiting);
      Ok Admission.Queue
  | Admission.Reject _ as r ->
      t.rejected <- t.rejected + 1;
      Ok r

let promote_waiting t =
  let rec loop () =
    if
      List.length t.active < t.config.admission.Admission.max_active
      && delta_entries_in_use t
         < t.config.admission.Admission.max_delta_entries
      && t.waiting <> []
    then begin
      match t.waiting with
      | [] -> ()
      | cfg :: rest -> (
          t.waiting <- rest;
          match Tenant.create ~root:t.root ~sync:t.config.sync cfg with
          | Ok tenant ->
              t.active <- t.active @ [ tenant ];
              t.starts <- t.starts @ [ (cfg.Tenant.name, t.rounds) ];
              save_manifest t;
              loop ()
          | Error e ->
              t.rejected <- t.rejected + 1;
              Telemetry.incr "serve.promote_failures";
              ignore e;
              loop ())
    end
  in
  loop ()

let sweep_completed t =
  let done_, still = List.partition Tenant.finished t.active in
  t.active <- still;
  List.iter
    (fun tenant ->
      let consistent = Tenant.finish tenant in
      t.completed <- (tenant, consistent) :: t.completed)
    done_;
  if done_ <> [] then promote_waiting t

(* Phases A and C touch one tenant's private state each (its engine, WAL,
   controller, monitor), so fanning them out over the pool is
   bit-identical to the sequential order; phase B (coordination and
   accounting) is cross-tenant and stays sequential. *)
let pmap t f arr =
  match t.pool with
  | Some p when Parallel.Pool.domains p > 1 && Array.length arr > 1 ->
      Parallel.Pool.map p f arr
  | _ -> Array.map f arr

let start_of t name =
  match List.assoc_opt name t.starts with Some s -> s | None -> 0

(* A tenant lagging behind the global round only happens after recovery:
   trailing zero-arrival no-flush steps leave no WAL trace, so replay
   stops short of them and the tenant's local clock trails the others'.
   Re-executing those steps solo before the round proper reproduces the
   crashed run exactly (they were pure-observe steps, and [mandatory] is
   deterministic in the replayed controller state) and restores the
   invariant that every active tenant's local step [k] runs at global
   round [start + k] — which the co-flush coincidence structure, and
   hence the discounted aggregate, depends on.  A crash mid-round can
   additionally leave one real ingested-but-unflushed step behind; it is
   executed here with its mandatory flush, charged undiscounted (its
   round's coordination died with the crash and was never journalled). *)
let catch_up t tenant =
  while
    (not (Tenant.finished tenant))
    && start_of t (Tenant.name tenant) + Tenant.time tenant < t.rounds
  do
    Tenant.begin_step tenant;
    let batch =
      match Tenant.mandatory tenant with
      | Some action -> Array.copy action
      | None -> Array.make Tenant.n_tables 0
    in
    Array.iteri
      (fun i b ->
        if b > 0 then begin
          let c = Tenant.model_cost tenant i b in
          t.agg_charged <- t.agg_charged +. c;
          t.agg_raw <- t.agg_raw +. c
        end)
      batch;
    Tenant.execute tenant batch;
    Tenant.close_step tenant
  done

let run_round t =
  t.config.hook (Durable.Hook.Step_start t.rounds);
  let tenants = Array.of_list t.active in
  let k = Array.length tenants in
  (* Phase A: ingest + observe + mandatory proposal, per tenant. *)
  let proposals =
    pmap t
      (fun tenant ->
        Tenant.begin_step tenant;
        Tenant.mandatory tenant)
      tenants
  in
  let batches =
    Array.map
      (function
        | Some action -> Array.copy action
        | None -> Array.make Tenant.n_tables 0)
      proposals
  in
  (* Phase B: coordination.  A tenant forced to flush table [i] invites
     every other tenant whose own table-[i] flush is nearly due
     (pending >= 60% of its budgeted batch capacity, the multiview
     piggyback rule) — optional work the shed budget may refuse. *)
  let round_model_cost = ref 0.0 in
  for v = 0 to k - 1 do
    Array.iteri
      (fun i b ->
        if b > 0 then
          round_model_cost :=
            !round_model_cost +. Tenant.model_cost tenants.(v) i b)
      batches.(v)
  done;
  if t.config.coordinate then
    for i = 0 to Tenant.n_tables - 1 do
      let someone_flushes =
        Array.exists (fun row -> row.(i) > 0) batches
      in
      if someone_flushes then
        Array.iteri
          (fun v tenant ->
            if batches.(v).(i) = 0 then begin
              let pending_i = (Tenant.pending tenant).(i) in
              if
                pending_i > 0
                && float_of_int pending_i
                   >= 0.6 *. float_of_int (max 1 (Tenant.capacity tenant i))
              then begin
                let c = Tenant.model_cost tenant i pending_i in
                match t.config.shed_budget with
                | Some budget when !round_model_cost +. c > budget ->
                    Tenant.shed tenant
                | _ ->
                    batches.(v).(i) <- pending_i;
                    round_model_cost := !round_model_cost +. c
              end
            end)
          tenants
    done;
  (* Accounting: per table, the co-flush price across tenants under the
     multiview shared-setup rule.  The discount is a fraction of the
     cheapest participant's single-modification cost — the shared part of
     the scan, in calibrated units. *)
  for i = 0 to Tenant.n_tables - 1 do
    let costs = ref [] in
    let min_setup = ref infinity in
    for v = 0 to k - 1 do
      let b = batches.(v).(i) in
      if b > 0 then begin
        costs := Tenant.model_cost tenants.(v) i b :: !costs;
        min_setup := Float.min !min_setup (Tenant.model_cost tenants.(v) i 1)
      end
    done;
    match !costs with
    | [] -> ()
    | costs ->
        (* Without coordination, tenants flushing the same table in the
           same round is coincidence, not a shared scan: full price, no
           join counted. *)
        let discount =
          if t.config.coordinate then t.config.discount_factor *. !min_setup
          else 0.0
        in
        let charged = Multiview.Coordinator.charge_shared ~discount costs in
        let raw = List.fold_left ( +. ) 0.0 costs in
        t.agg_charged <- t.agg_charged +. charged;
        t.agg_raw <- t.agg_raw +. raw;
        if t.config.coordinate then
          t.co_flushes <- t.co_flushes + (List.length costs - 1)
  done;
  (* Phase C: execute + close, per tenant. *)
  ignore
    (pmap t
       (fun (tenant, batch) ->
         Tenant.execute tenant batch;
         Tenant.close_step tenant)
       (Array.init k (fun v -> (tenants.(v), batches.(v)))));
  if Telemetry.enabled () then begin
    Telemetry.set_gauge "serve.tenants_active"
      (float_of_int (List.length t.active));
    Telemetry.set_gauge "serve.tenants_queued"
      (float_of_int (List.length t.waiting))
  end;
  t.rounds <- t.rounds + 1

let outcome_of t =
  let tenant_outcomes =
    List.rev_map
      (fun (tenant, consistent) ->
        let steps = Tenant.config tenant |> fun c -> c.Tenant.horizon + 1 in
        {
          tenant = Tenant.name tenant;
          steps;
          metered_cost = Tenant.metered_cost tenant;
          charged_cost = Tenant.charged_cost tenant;
          violations = Tenant.violations tenant;
          violation_rate =
            float_of_int (Tenant.violations tenant) /. float_of_int steps;
          sheds = Tenant.sheds tenant;
          reanchors = Tenant.reanchors tenant;
          consistent;
          replayed = Tenant.replayed tenant;
        })
      t.completed
  in
  {
    tenants = tenant_outcomes;
    rounds = t.rounds;
    aggregate_charged = t.agg_charged;
    aggregate_undiscounted = t.agg_raw;
    co_flushes = t.co_flushes;
    worst_violation_rate =
      List.fold_left
        (fun acc o -> Float.max acc o.violation_rate)
        0.0 tenant_outcomes;
    rejected = t.rejected;
    queued_peak = t.queued_peak;
  }

let run t =
  try
    (* Lag exists only immediately after recovery; one catch-up pass
       re-aligns every tenant's local clock with the global round. *)
    List.iter (catch_up t) t.active;
    sweep_completed t;
    while t.active <> [] || t.waiting <> [] do
      if t.active = [] then promote_waiting t;
      run_round t;
      sweep_completed t
    done;
    outcome_of t
  with Durable.Hook.Crash _ as crash ->
    (* Simulated process death: drop every tenant's unflushed WAL tail
       exactly as a real crash would, then let the exception out. *)
    List.iter Tenant.abandon t.active;
    raise crash

(* --- recovery ------------------------------------------------------------- *)

let recover ?pool ~root () =
  let ( let* ) = Result.bind in
  let* manifest =
    match Durable.Manifest.load ~dir:root with
    | Ok (Some m) -> Ok m
    | Ok None -> Error (Printf.sprintf "%s: no serve manifest" root)
    | Error e -> Error (Printf.sprintf "%s: manifest: %s" root e)
  in
  let* config, starts = config_of_params manifest.Durable.Manifest.params in
  let names = List.map fst starts in
  let t =
    {
      root;
      config;
      pool;
      active = [];
      waiting = [];
      completed = [];
      known = [];
      starts;
      rejected = 0;
      queued_peak = 0;
      rounds = 0;
      agg_charged = 0.0;
      agg_raw = 0.0;
      co_flushes = 0;
    }
  in
  let* tenants =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let dir = Filename.concat (Filename.concat root "tenants") name in
        let* tenant_manifest =
          match Durable.Manifest.load ~dir with
          | Ok (Some m) -> Ok m
          | Ok None -> Error (Printf.sprintf "tenant %S: no manifest" name)
          | Error e -> Error (Printf.sprintf "tenant %S: manifest: %s" name e)
        in
        let* cfg =
          Tenant.config_of_params tenant_manifest.Durable.Manifest.params
        in
        let* tenant = Tenant.recover ~root ~sync:config.sync cfg in
        Ok (tenant :: acc))
      (Ok []) names
    |> Result.map List.rev
  in
  t.active <- tenants;
  t.known <- List.rev names;
  (* Resume at the furthest round any tenant reached; the others catch up
     their unjournalled trailing steps at the head of the next round. *)
  t.rounds <-
    List.fold_left
      (fun acc tenant ->
        max acc (start_of t (Tenant.name tenant) + Tenant.time tenant))
      0 tenants;
  (* Rebuild the coordination accounting for the replayed portion.  The
     live scheduler grouped flushes by (global round, table), priced each
     group in ascending (round, table) order, and listed participants in
     registration order; every replayed flush carries its local time and
     its model costs as evaluated at that point of the replay, so the
     same groups — and bit-identical aggregates — fall out. *)
  let groups : (int * int, (float * float) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun tenant ->
      let start = start_of t (Tenant.name tenant) in
      List.iter
        (fun (time, table, cost, setup) ->
          let key = (start + time, table) in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt groups key)
          in
          Hashtbl.replace groups key ((cost, setup) :: prev))
        (Tenant.replayed_flushes tenant))
    tenants;
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
  in
  List.iter
    (fun key ->
      let entries = Hashtbl.find groups key in
      let costs = List.map fst entries in
      let min_setup =
        List.fold_left (fun acc (_, s) -> Float.min acc s) infinity entries
      in
      let discount =
        if t.config.coordinate then t.config.discount_factor *. min_setup
        else 0.0
      in
      let charged = Multiview.Coordinator.charge_shared ~discount costs in
      let raw = List.fold_left ( +. ) 0.0 costs in
      t.agg_charged <- t.agg_charged +. charged;
      t.agg_raw <- t.agg_raw +. raw;
      if t.config.coordinate then
        t.co_flushes <- t.co_flushes + (List.length entries - 1))
    keys;
  Ok t

let total_replayed t =
  List.fold_left (fun acc tenant -> acc + Tenant.replayed tenant) 0 t.active
  + List.fold_left
      (fun acc (tenant, _) -> acc + Tenant.replayed tenant)
      0 t.completed
