type wal_mode = Grouped | Private
type scheduler = Event | Lockstep

type config = {
  admission : Admission.config;
  coordinate : bool;
  discount_factor : float;
  shed_budget : float option;
  sync : Durable.Wal.sync;
  wal_mode : wal_mode;
  scheduler : scheduler;
  hook : Durable.Hook.point -> unit;
}

let default_config =
  {
    admission = Admission.default;
    coordinate = true;
    discount_factor = 0.0;
    shed_budget = None;
    sync = Durable.Wal.Always;
    wal_mode = Grouped;
    scheduler = Event;
    hook = Durable.Hook.none;
  }

type tenant_outcome = {
  tenant : string;
  steps : int;
  metered_cost : float;
  charged_cost : float;
  violations : int;
  violation_rate : float;
  sheds : int;
  reanchors : int;
  consistent : bool;
  replayed : int;
}

type outcome = {
  tenants : tenant_outcome list;
  rounds : int;
  aggregate_charged : float;
  aggregate_undiscounted : float;
  co_flushes : int;
  worst_violation_rate : float;
  rejected : int;
  queued_peak : int;
}

type t = {
  root : string;
  config : config;
  pool : Parallel.Pool.t option;
  group : Durable.Groupwal.t option;  (* the shared log, grouped mode *)
  mutable active : Tenant.t list;  (* registration order *)
  mutable waiting : Tenant.config list;  (* FIFO, creation deferred *)
  mutable completed : (Tenant.t * bool) list;  (* newest first *)
  mutable known : string list;
  mutable starts : (string * int) list;  (* admission round per tenant *)
  mutable rejected : int;
  mutable queued_peak : int;
  mutable rounds : int;
  mutable idle_rounds : int;
  mutable agg_charged : float;
  mutable agg_raw : float;
  mutable co_flushes : int;
  mutable journal : (int * (string * int array) list) list;
      (* phase-B co-flush decisions, newest round first: every flushing
         tenant's final (post-invite, post-shed) batch row for rounds
         where some table had >= 2 participants — persisted in the
         manifest before phase C so a mid-round crash can replay the
         round's coordination exactly instead of re-deriving it *)
  pending_groups : (int * int, (int * float * float) list) Hashtbl.t;
      (* recovery only: (global round, table) -> participants as
         (registration index, batch model cost, single-mod setup cost);
         folded into the aggregates in key order by [settle_recovered]
         once catch-up has re-added any crashed-away participants *)
}

(* --- service manifest ----------------------------------------------------- *)

let sync_to_string = Durable.Wal.sync_to_string
let sync_of_string = Durable.Wal.sync_of_string

(* How many journalled rounds the manifest retains.  Recovery only ever
   consults rounds a tenant's replay stopped short of, and a tenant can
   trail by at most the records lost in one open group-commit window (or
   one private Interval depth) plus its trailing no-trace idle steps —
   the journal is only needed for the former, which is bounded by a
   round or two; 8 leaves slack for deep Interval policies. *)
let journal_depth = 8

let journal_to_string entries =
  entries
  |> List.map (fun (round, rows) ->
         Printf.sprintf "%d:%s" round
           (String.concat ","
              (List.map
                 (fun (name, row) ->
                   Printf.sprintf "%s=%s" name
                     (String.concat "/"
                        (List.map string_of_int (Array.to_list row))))
                 rows)))
  |> String.concat ";"

let journal_of_string text =
  let ( let* ) = Result.bind in
  let entries = List.filter (fun s -> s <> "") (String.split_on_char ';' text) in
  List.fold_left
    (fun acc entry ->
      let* acc = acc in
      match String.index_opt entry ':' with
      | None -> Error (Printf.sprintf "bad coflush entry %S" entry)
      | Some i -> (
          match int_of_string_opt (String.sub entry 0 i) with
          | None -> Error (Printf.sprintf "bad coflush round in %S" entry)
          | Some round ->
              let rest =
                String.sub entry (i + 1) (String.length entry - i - 1)
              in
              let* rows =
                List.fold_left
                  (fun acc cell ->
                    let* acc = acc in
                    match String.index_opt cell '=' with
                    | None -> Error (Printf.sprintf "bad coflush cell %S" cell)
                    | Some j ->
                        let name = String.sub cell 0 j in
                        let nums =
                          String.sub cell (j + 1) (String.length cell - j - 1)
                          |> String.split_on_char '/'
                          |> List.map int_of_string_opt
                        in
                        if List.exists Option.is_none nums then
                          Error (Printf.sprintf "bad coflush batch %S" cell)
                        else
                          Ok
                            ((name,
                              Array.of_list (List.map Option.get nums))
                            :: acc))
                  (Ok [])
                  (List.filter (fun s -> s <> "")
                     (String.split_on_char ',' rest))
                |> Result.map List.rev
              in
              Ok ((round, rows) :: acc)))
    (Ok []) entries
  |> Result.map List.rev

(* The root manifest pins everything recovery needs to continue the run
   identically: the scheduler's coordination parameters and the admitted
   tenants in registration order (coordination iterates tenants in that
   order, so the order is part of the deterministic state), each with the
   round it was admitted at — a tenant's local step [k] always executes
   at global round [start + k], which recovery re-establishes. *)
let service_params t =
  [
    ("kind", "serve");
    ("coordinate", string_of_bool t.config.coordinate);
    ("discount_factor", Printf.sprintf "%h" t.config.discount_factor);
    ( "shed_budget",
      match t.config.shed_budget with
      | None -> "none"
      | Some b -> Printf.sprintf "%h" b );
    ("sync", sync_to_string t.config.sync);
    ( "wal_mode",
      match t.config.wal_mode with Grouped -> "grouped" | Private -> "private"
    );
    ( "scheduler",
      match t.config.scheduler with Event -> "event" | Lockstep -> "lockstep"
    );
    ("max_active", string_of_int t.config.admission.Admission.max_active);
    ("max_queued", string_of_int t.config.admission.Admission.max_queued);
    ( "max_delta_entries",
      string_of_int t.config.admission.Admission.max_delta_entries );
    ( "tenants",
      String.concat ";"
        (List.map
           (fun (name, start) -> Printf.sprintf "%s:%d" name start)
           t.starts) );
  ]
  @
  match t.journal with
  | [] -> []
  | entries -> [ ("coflush", journal_to_string entries) ]

let save_manifest t =
  Durable.Manifest.save ~dir:t.root
    (Durable.Manifest.empty ~params:(service_params t))

let config_of_params params =
  let ( let* ) = Result.bind in
  let find key =
    match List.assoc_opt key params with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "service params missing %S" key)
  in
  let int_param key =
    Result.bind (find key) (fun v ->
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "bad %s parameter %S" key v))
  in
  let* kind = find "kind" in
  let* () =
    if kind = "serve" then Ok ()
    else Error (Printf.sprintf "not a serve directory (kind %S)" kind)
  in
  let* coordinate =
    Result.bind (find "coordinate") (fun v ->
        match bool_of_string_opt v with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "bad coordinate parameter %S" v))
  in
  let* discount_factor =
    Result.bind (find "discount_factor") (fun v ->
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad discount_factor parameter %S" v))
  in
  let* shed_budget =
    Result.bind (find "shed_budget") (fun v ->
        if v = "none" then Ok None
        else
          match float_of_string_opt v with
          | Some f -> Ok (Some f)
          | None -> Error (Printf.sprintf "bad shed_budget parameter %S" v))
  in
  let* sync = Result.bind (find "sync") sync_of_string in
  (* Absent in pre-group-commit manifests: those runs used private
     per-tenant WALs driven in lockstep. *)
  let* wal_mode =
    match List.assoc_opt "wal_mode" params with
    | None -> Ok Private
    | Some "grouped" -> Ok Grouped
    | Some "private" -> Ok Private
    | Some v -> Error (Printf.sprintf "bad wal_mode parameter %S" v)
  in
  let* scheduler =
    match List.assoc_opt "scheduler" params with
    | None -> Ok Lockstep
    | Some "event" -> Ok Event
    | Some "lockstep" -> Ok Lockstep
    | Some v -> Error (Printf.sprintf "bad scheduler parameter %S" v)
  in
  let* max_active = int_param "max_active" in
  let* max_queued = int_param "max_queued" in
  (* Pre-budget manifests have no entry: unlimited, as before. *)
  let* max_delta_entries =
    match List.assoc_opt "max_delta_entries" params with
    | None -> Ok max_int
    | Some _ -> int_param "max_delta_entries"
  in
  let* tenants =
    Result.bind (find "tenants") (fun v ->
        let entries =
          List.filter (fun s -> s <> "") (String.split_on_char ';' v)
        in
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            match String.index_opt entry ':' with
            | Some i -> (
                let name = String.sub entry 0 i in
                match
                  int_of_string_opt
                    (String.sub entry (i + 1) (String.length entry - i - 1))
                with
                | Some s when s >= 0 -> Ok ((name, s) :: acc)
                | _ -> Error (Printf.sprintf "bad tenant entry %S" entry))
            | None -> Ok ((entry, 0) :: acc))
          (Ok []) entries
        |> Result.map List.rev)
  in
  Ok
    ( {
        admission = { Admission.max_active; max_queued; max_delta_entries };
        coordinate;
        discount_factor;
        shed_budget;
        sync;
        wal_mode;
        scheduler;
        hook = Durable.Hook.none;
      },
      tenants )

(* --- lifecycle ------------------------------------------------------------ *)

let group_dir root = Filename.concat root "groupwal"

let create ?pool ~root config =
  if config.discount_factor < 0.0 then
    invalid_arg "Service: discount_factor must be >= 0";
  Durable.Fsutil.mkdirs root;
  let group =
    match config.wal_mode with
    | Private -> None
    | Grouped ->
        Some (Durable.Groupwal.open_ ~dir:(group_dir root) ~hook:config.hook ())
  in
  let t =
    {
      root;
      config;
      pool;
      group;
      active = [];
      waiting = [];
      completed = [];
      known = [];
      starts = [];
      rejected = 0;
      queued_peak = 0;
      rounds = 0;
      idle_rounds = 0;
      agg_charged = 0.0;
      agg_raw = 0.0;
      co_flushes = 0;
      journal = [];
      pending_groups = Hashtbl.create 16;
    }
  in
  save_manifest t;
  t

let admit t cfg =
  match Tenant.create ~hook:t.config.hook ~root:t.root ~sync:t.config.sync ?group:t.group cfg with
  | Error e -> Error e
  | Ok tenant ->
      t.active <- t.active @ [ tenant ];
      t.known <- cfg.Tenant.name :: t.known;
      t.starts <- t.starts @ [ (cfg.Tenant.name, t.rounds) ];
      save_manifest t;
      Ok ()

let delta_entries_in_use t =
  List.fold_left (fun acc tenant -> acc + Tenant.delta_entries tenant) 0
    t.active

let register t cfg =
  let decision =
    Admission.decide t.config.admission ~active:(List.length t.active)
      ~queued:(List.length t.waiting)
      ~delta_entries:(delta_entries_in_use t) ~known:t.known cfg.Tenant.name
  in
  match decision with
  | Admission.Admit ->
      Result.map (fun () -> Admission.Admit) (admit t cfg)
  | Admission.Queue ->
      t.waiting <- t.waiting @ [ cfg ];
      t.known <- cfg.Tenant.name :: t.known;
      t.queued_peak <- max t.queued_peak (List.length t.waiting);
      Ok Admission.Queue
  | Admission.Reject _ as r ->
      t.rejected <- t.rejected + 1;
      Ok r

let promote_waiting t =
  let rec loop () =
    if
      List.length t.active < t.config.admission.Admission.max_active
      && delta_entries_in_use t
         < t.config.admission.Admission.max_delta_entries
      && t.waiting <> []
    then begin
      match t.waiting with
      | [] -> ()
      | cfg :: rest -> (
          t.waiting <- rest;
          match
            Tenant.create ~hook:t.config.hook ~root:t.root ~sync:t.config.sync ?group:t.group cfg
          with
          | Ok tenant ->
              t.active <- t.active @ [ tenant ];
              t.starts <- t.starts @ [ (cfg.Tenant.name, t.rounds) ];
              save_manifest t;
              loop ()
          | Error e ->
              t.rejected <- t.rejected + 1;
              Telemetry.incr "serve.promote_failures";
              ignore e;
              loop ())
    end
  in
  loop ()

let sweep_completed t =
  let done_, still = List.partition Tenant.finished t.active in
  t.active <- still;
  List.iter
    (fun tenant ->
      let consistent = Tenant.finish tenant in
      t.completed <- (tenant, consistent) :: t.completed)
    done_;
  if done_ <> [] then promote_waiting t

(* Phases A and C touch one tenant's private state each (its engine, WAL,
   controller, monitor), so fanning them out over the pool is
   bit-identical to the sequential order; phase B (coordination and
   accounting) is cross-tenant and stays sequential. *)
let pmap t f arr =
  match t.pool with
  | Some p when Parallel.Pool.domains p > 1 && Array.length arr > 1 ->
      Parallel.Pool.map p f arr
  | _ -> Array.map f arr

let start_of t name =
  match List.assoc_opt name t.starts with Some s -> s | None -> 0

(* Position in the registration order — the order coordination iterates
   tenants in, which fixes the float-summation order inside a co-flush
   group and hence the aggregate's exact bits. *)
let reg_index t name =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Service: unknown tenant %S" name)
    | (n, _) :: rest -> if n = name then i else go (i + 1) rest
  in
  go 0 t.starts

let add_pending_group t key entry =
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.pending_groups key) in
  Hashtbl.replace t.pending_groups key (entry :: prev)

let journal_row t ~round ~name =
  match List.find_opt (fun (r, _) -> r = round) t.journal with
  | None -> None
  | Some (_, rows) -> List.assoc_opt name rows

(* Price every recovered (round, table) co-flush group and fold it into
   the aggregates, in ascending key order — exactly the chronological
   order the uninterrupted run accumulated them in, so the float sums
   come out bit-identical.  Within a group, participants are ordered by
   descending registration index, matching the live phase-B cons order.
   Runs once, after catch-up has re-added any crashed-away
   participants. *)
let settle_recovered t =
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.pending_groups [])
  in
  List.iter
    (fun key ->
      let entries =
        Hashtbl.find t.pending_groups key
        |> List.sort (fun (a, _, _) (b, _, _) -> compare (b : int) a)
      in
      let costs = List.map (fun (_, c, _) -> c) entries in
      let min_setup =
        List.fold_left (fun acc (_, _, s) -> Float.min acc s) infinity entries
      in
      let discount =
        if t.config.coordinate then t.config.discount_factor *. min_setup
        else 0.0
      in
      let charged = Multiview.Coordinator.charge_shared ~discount costs in
      let raw = List.fold_left ( +. ) 0.0 costs in
      t.agg_charged <- t.agg_charged +. charged;
      t.agg_raw <- t.agg_raw +. raw;
      if t.config.coordinate then
        t.co_flushes <- t.co_flushes + (List.length costs - 1))
    keys;
  Hashtbl.reset t.pending_groups

(* A tenant lagging behind the global round only happens after recovery:
   trailing zero-arrival no-flush steps leave no WAL trace, so replay
   stops short of them and the tenant's local clock trails the others'.
   Re-executing those steps solo before the round proper reproduces the
   crashed run exactly and restores the invariant that every active
   tenant's local step [k] runs at global round [start + k] — which the
   co-flush coincidence structure, and hence the discounted aggregate,
   depends on.  A crash mid-round can additionally leave one real
   ingested-but-unflushed step behind; the phase-B journal holds that
   round's exact coordination decision (every flusher's final batch
   row), so the step re-executes the identical — possibly
   invite-enlarged — batch, and its charge folds into the recovered
   group via [pending_groups], reproducing the lost round's discount
   bit-for-bit.  Unjournalled rounds had no >= 2 co-flush group, so the
   deterministic [mandatory] recompute is already exact. *)
let catch_up t tenant =
  let name = Tenant.name tenant in
  let start = start_of t name in
  let idx = reg_index t name in
  while
    (not (Tenant.finished tenant)) && start + Tenant.time tenant < t.rounds
  do
    let round = start + Tenant.time tenant in
    Tenant.begin_step tenant;
    let batch =
      match journal_row t ~round ~name with
      | Some row -> Array.copy row
      | None -> (
          match Tenant.mandatory tenant with
          | Some action -> Array.copy action
          | None -> Array.make Tenant.n_tables 0)
    in
    Array.iteri
      (fun i b ->
        if b > 0 then
          add_pending_group t (round, i)
            (idx, Tenant.model_cost tenant i b, Tenant.model_cost tenant i 1))
      batch;
    Tenant.execute tenant batch;
    Tenant.close_step tenant
  done

let run_round t =
  t.config.hook (Durable.Hook.Step_start t.rounds);
  let tenants = Array.of_list t.active in
  let k = Array.length tenants in
  (* Ready mask: the event scheduler only dispatches tenants whose step
     does real work (arrivals due per their next-arrival clock, refresh
     budget already exceeded, or the final horizon flush).  Lockstep
     mode is the all-true mask — both modes then share one code path,
     which is what makes them bit-identical by construction. *)
  let ready =
    match t.config.scheduler with
    | Lockstep -> Array.make k true
    | Event -> Array.map Tenant.ready tenants
  in
  if not (Array.exists Fun.id ready) then begin
    (* Nobody can propose (readiness subsumes [propose]'s fullness gate)
       and nobody flushes, so phases B and C degenerate: step every
       tenant inline — no pool dispatch, no WAL bytes, no window work. *)
    Array.iter Tenant.idle_step tenants;
    t.idle_rounds <- t.idle_rounds + 1;
    Telemetry.incr "serve.idle_rounds"
  end
  else begin
    (* Phase A: ingest + observe + mandatory proposal, ready tenants
       only.  A non-ready tenant's proposal would be [None] (zero
       arrivals leave its controller exactly as the readiness check saw
       it), so skipping it changes nothing downstream. *)
    let batches = Array.init k (fun _ -> Array.make Tenant.n_tables 0) in
    let ready_idx =
      Array.of_list (List.filter (fun v -> ready.(v)) (List.init k Fun.id))
    in
    let proposals =
      pmap t
        (fun v ->
          Tenant.begin_step tenants.(v);
          Tenant.mandatory tenants.(v))
        ready_idx
    in
    Array.iteri
      (fun j v ->
        match proposals.(j) with
        | Some action -> batches.(v) <- Array.copy action
        | None -> ())
      ready_idx;
    (* Phase B: coordination.  A tenant forced to flush table [i] invites
       every other tenant whose own table-[i] flush is nearly due
       (pending >= 60% of its budgeted batch capacity, the multiview
       piggyback rule) — optional work the shed budget may refuse.
       Non-ready tenants are invite-eligible like everyone else: their
       pending/capacity state is exactly what a lockstep [begin_step]
       would have left (zero arrivals). *)
    let round_model_cost = ref 0.0 in
    for v = 0 to k - 1 do
      Array.iteri
        (fun i b ->
          if b > 0 then
            round_model_cost :=
              !round_model_cost +. Tenant.model_cost tenants.(v) i b)
        batches.(v)
    done;
    if t.config.coordinate then
      for i = 0 to Tenant.n_tables - 1 do
        let someone_flushes = Array.exists (fun row -> row.(i) > 0) batches in
        if someone_flushes then
          Array.iteri
            (fun v tenant ->
              if batches.(v).(i) = 0 then begin
                let pending_i = (Tenant.pending tenant).(i) in
                if
                  pending_i > 0
                  && float_of_int pending_i
                     >= 0.6 *. float_of_int (max 1 (Tenant.capacity tenant i))
                then begin
                  let c = Tenant.model_cost tenant i pending_i in
                  match t.config.shed_budget with
                  | Some budget when !round_model_cost +. c > budget ->
                      Tenant.shed tenant
                  | _ ->
                      batches.(v).(i) <- pending_i;
                      round_model_cost := !round_model_cost +. c
                end
              end)
            tenants
      done;
    (* Journal the round's coordination decision before any of phase C
       can reach disk.  Only rounds with a >= 2-participant group need
       it: a lost singleton flush re-derives identically from the
       deterministic controller at catch-up, but a lost co-flush
       participant (above all an *invited* one, whose batch is not its
       own proposal) cannot be re-derived without the decision — the
       pre-fix recovery caveat.  Written into the service manifest
       (atomic rename), strictly before the first Applied record of
       this round can become durable. *)
    if t.config.coordinate then begin
      let multi = ref false in
      for i = 0 to Tenant.n_tables - 1 do
        let flushers = ref 0 in
        Array.iter (fun row -> if row.(i) > 0 then incr flushers) batches;
        if !flushers >= 2 then multi := true
      done;
      if !multi then begin
        let rows = ref [] in
        for v = k - 1 downto 0 do
          if Array.exists (fun b -> b > 0) batches.(v) then
            rows :=
              (Tenant.name tenants.(v), Array.copy batches.(v)) :: !rows
        done;
        t.journal <-
          (t.rounds, !rows)
          :: List.filter
               (fun (r, _) -> r <> t.rounds && r > t.rounds - journal_depth)
               t.journal;
        save_manifest t
      end
    end;
    (* Accounting: per table, the co-flush price across tenants under the
       multiview shared-setup rule.  The discount is a fraction of the
       cheapest participant's single-modification cost — the shared part
       of the scan, in calibrated units. *)
    for i = 0 to Tenant.n_tables - 1 do
      let costs = ref [] in
      let min_setup = ref infinity in
      for v = 0 to k - 1 do
        let b = batches.(v).(i) in
        if b > 0 then begin
          costs := Tenant.model_cost tenants.(v) i b :: !costs;
          min_setup := Float.min !min_setup (Tenant.model_cost tenants.(v) i 1)
        end
      done;
      match !costs with
      | [] -> ()
      | costs ->
          (* Without coordination, tenants flushing the same table in the
             same round is coincidence, not a shared scan: full price, no
             join counted. *)
          let discount =
            if t.config.coordinate then t.config.discount_factor *. !min_setup
            else 0.0
          in
          let charged = Multiview.Coordinator.charge_shared ~discount costs in
          let raw = List.fold_left ( +. ) 0.0 costs in
          t.agg_charged <- t.agg_charged +. charged;
          t.agg_raw <- t.agg_raw +. raw;
          if t.config.coordinate then
            t.co_flushes <- t.co_flushes + (List.length costs - 1)
    done;
    (* Phase C: execute + close, over the tenants with work (plus every
       ready tenant, flushing or not — matching lockstep exactly).  An
       invited non-ready tenant ingests its (empty) step here first;
       the rest idle-step inline, off the pool. *)
    let in_c = Array.init k (fun v -> ready.(v) || Array.exists (fun b -> b > 0) batches.(v)) in
    for v = 0 to k - 1 do
      if not ready.(v) then
        if in_c.(v) then Tenant.begin_step tenants.(v)
        else Tenant.idle_step tenants.(v)
    done;
    ignore
      (pmap t
         (fun v ->
           Tenant.execute tenants.(v) batches.(v);
           Tenant.close_step tenants.(v))
         (Array.of_list (List.filter (fun v -> in_c.(v)) (List.init k Fun.id))))
  end;
  (* The round's single durability point: close the shared group-commit
     window per the service cadence ([Always]: every round; [Interval n]:
     every n-th; [Never]: only rotation and shutdown).  One fsync covers
     every tenant's commits of the round; a no-op when the window is
     empty, so idle rounds stay free.  Tenants with forcing policies
     already closed the window at their own commits inside the round. *)
  (match t.group with
  | None -> ()
  | Some gw ->
      let due =
        match t.config.sync with
        | Durable.Wal.Always -> true
        | Durable.Wal.Interval n -> (t.rounds + 1) mod n = 0
        | Durable.Wal.Never -> false
      in
      if due then ignore (Durable.Groupwal.close_window gw));
  if Telemetry.enabled () then begin
    Telemetry.set_gauge "serve.tenants_active"
      (float_of_int (List.length t.active));
    Telemetry.set_gauge "serve.tenants_queued"
      (float_of_int (List.length t.waiting));
    (match t.group with
    | Some gw ->
        let closes = Durable.Groupwal.window_closes gw in
        Telemetry.set_gauge "serve.window_closes" (float_of_int closes);
        Telemetry.set_gauge "serve.fsyncs_per_round"
          (float_of_int closes /. float_of_int (t.rounds + 1))
    | None -> ())
  end;
  t.rounds <- t.rounds + 1

let outcome_of t =
  let tenant_outcomes =
    List.rev_map
      (fun (tenant, consistent) ->
        let steps = Tenant.config tenant |> fun c -> c.Tenant.horizon + 1 in
        {
          tenant = Tenant.name tenant;
          steps;
          metered_cost = Tenant.metered_cost tenant;
          charged_cost = Tenant.charged_cost tenant;
          violations = Tenant.violations tenant;
          violation_rate =
            float_of_int (Tenant.violations tenant) /. float_of_int steps;
          sheds = Tenant.sheds tenant;
          reanchors = Tenant.reanchors tenant;
          consistent;
          replayed = Tenant.replayed tenant;
        })
      t.completed
  in
  {
    tenants = tenant_outcomes;
    rounds = t.rounds;
    aggregate_charged = t.agg_charged;
    aggregate_undiscounted = t.agg_raw;
    co_flushes = t.co_flushes;
    worst_violation_rate =
      List.fold_left
        (fun acc o -> Float.max acc o.violation_rate)
        0.0 tenant_outcomes;
    rejected = t.rejected;
    queued_peak = t.queued_peak;
  }

let run t =
  try
    (* Lag exists only immediately after recovery; one catch-up pass
       re-aligns every tenant's local clock with the global round, then
       the recovered co-flush groups — now complete — are priced in
       chronological order and folded into the aggregates. *)
    List.iter (catch_up t) t.active;
    settle_recovered t;
    sweep_completed t;
    while t.active <> [] || t.waiting <> [] do
      if t.active = [] then promote_waiting t;
      run_round t;
      sweep_completed t
    done;
    (match t.group with Some gw -> Durable.Groupwal.close gw | None -> ());
    outcome_of t
  with Durable.Hook.Crash _ as crash ->
    (* Simulated process death: drop every tenant's unflushed tail — and
       the shared log's open window — exactly as a real crash would,
       then let the exception out. *)
    List.iter Tenant.abandon t.active;
    (match t.group with Some gw -> Durable.Groupwal.abandon gw | None -> ());
    raise crash

(* --- recovery ------------------------------------------------------------- *)

let recover ?pool ~root () =
  let ( let* ) = Result.bind in
  let* manifest =
    match Durable.Manifest.load ~dir:root with
    | Ok (Some m) -> Ok m
    | Ok None -> Error (Printf.sprintf "%s: no serve manifest" root)
    | Error e -> Error (Printf.sprintf "%s: manifest: %s" root e)
  in
  let params = manifest.Durable.Manifest.params in
  let* config, starts = config_of_params params in
  let* journal =
    match List.assoc_opt "coflush" params with
    | None -> Ok []
    | Some text -> journal_of_string text
  in
  let names = List.map fst starts in
  (* Grouped mode: reopen the shared log first (repairing any torn
     tail), then demux it once into per-tenant record slices. *)
  let* group, demux =
    match config.wal_mode with
    | Private -> Ok (None, [])
    | Grouped -> (
        let dir = group_dir root in
        let gw = Durable.Groupwal.open_ ~dir ~hook:config.hook () in
        match Durable.Groupwal.read ~dir with
        | Ok demux -> Ok (Some gw, demux)
        | Error e ->
            Durable.Groupwal.abandon gw;
            Error (Printf.sprintf "%s: group wal: %s" root e))
  in
  let fail e =
    (match group with
    | Some gw -> Durable.Groupwal.abandon gw
    | None -> ());
    Error e
  in
  let t =
    {
      root;
      config;
      pool;
      group;
      active = [];
      waiting = [];
      completed = [];
      known = [];
      starts;
      rejected = 0;
      queued_peak = 0;
      rounds = 0;
      idle_rounds = 0;
      agg_charged = 0.0;
      agg_raw = 0.0;
      co_flushes = 0;
      journal;
      pending_groups = Hashtbl.create 64;
    }
  in
  let tenants_r =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let dir = Filename.concat (Filename.concat root "tenants") name in
        let* tenant_manifest =
          match Durable.Manifest.load ~dir with
          | Ok (Some m) -> Ok m
          | Ok None -> Error (Printf.sprintf "tenant %S: no manifest" name)
          | Error e -> Error (Printf.sprintf "tenant %S: manifest: %s" name e)
        in
        let* cfg =
          Tenant.config_of_params tenant_manifest.Durable.Manifest.params
        in
        let records =
          match config.wal_mode with
          | Private -> None
          | Grouped ->
              Some (Option.value ~default:[] (List.assoc_opt name demux))
        in
        let* tenant =
          Tenant.recover ~hook:config.hook ~root ~sync:config.sync ?group ?records cfg
        in
        Ok (tenant :: acc))
      (Ok []) names
    |> Result.map List.rev
  in
  match tenants_r with
  | Error e -> fail e
  | Ok tenants ->
      t.active <- tenants;
      t.known <- List.rev names;
      (* Resume at the furthest round any tenant reached; the others
         catch up their unjournalled trailing steps at the head of the
         next round. *)
      t.rounds <-
        List.fold_left
          (fun acc tenant ->
            max acc (start_of t (Tenant.name tenant) + Tenant.time tenant))
          0 tenants;
      (* Stage the replayed flushes as (round, table) co-flush groups.
         The live scheduler grouped flushes by (global round, table) and
         listed participants in registration order; every replayed flush
         carries its local time and its model costs as evaluated at that
         point of the replay, so the same groups fall out.  Pricing is
         deferred to [settle_recovered] (at the head of {!run}) so
         catch-up can first re-add participants whose flush died with
         the crash — the journalled decision makes the regrouping exact,
         and the sorted fold keeps the float accumulation order, and
         hence the aggregate bits, identical to the uninterrupted
         run's. *)
      List.iter
        (fun tenant ->
          let start = start_of t (Tenant.name tenant) in
          let idx = reg_index t (Tenant.name tenant) in
          List.iter
            (fun (time, table, cost, setup) ->
              add_pending_group t (start + time, table) (idx, cost, setup))
            (Tenant.replayed_flushes tenant))
        tenants;
      Ok t

let total_replayed t =
  List.fold_left (fun acc tenant -> acc + Tenant.replayed tenant) 0 t.active
  + List.fold_left
      (fun acc (tenant, _) -> acc + Tenant.replayed tenant)
      0 t.completed

let window_closes t =
  match t.group with
  | Some gw -> Durable.Groupwal.window_closes gw
  | None -> 0

let forced_closes t =
  match t.group with
  | Some gw -> Durable.Groupwal.forced_closes gw
  | None -> 0

let idle_rounds t = t.idle_rounds
let rounds t = t.rounds

(* Mode-aware journal reader for tests and tooling: a tenant's durable
   record sequence regardless of where it physically lives. *)
let tenant_records ~root ~name =
  let gdir = group_dir root in
  if Durable.Groupwal.exists ~dir:gdir then
    Result.map
      (fun demux -> Option.value ~default:[] (List.assoc_opt name demux))
      (Durable.Groupwal.read ~dir:gdir)
  else
    let dir = Filename.concat (Filename.concat root "tenants") name in
    Durable.Wal.read ~dir ~from_lsn:0
