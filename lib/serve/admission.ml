type config = {
  max_active : int;
  max_queued : int;
  max_delta_entries : int;
}

let default = { max_active = 8; max_queued = 8; max_delta_entries = max_int }

type decision = Admit | Queue | Reject of string

let describe = function
  | Admit -> "admit"
  | Queue -> "queue"
  | Reject reason -> "reject: " ^ reason

let decide config ~active ~queued ~delta_entries ~known name =
  if config.max_active < 1 then
    invalid_arg "Admission: max_active must be >= 1"
  else if config.max_delta_entries < 0 then
    invalid_arg "Admission: max_delta_entries must be >= 0"
  else if not (Durable.Fsutil.valid_tenant_name name) then
    Reject (Printf.sprintf "invalid tenant name %S" name)
  else if List.mem name known then
    Reject (Printf.sprintf "tenant %S already registered" name)
  else if active < config.max_active && delta_entries < config.max_delta_entries
  then Admit
  else if queued < config.max_queued then Queue
  else if active >= config.max_active then
    Reject
      (Printf.sprintf
         "at capacity (%d active, %d queued) — retry after a tenant completes"
         active queued)
  else
    Reject
      (Printf.sprintf
         "delta-view memory budget exhausted (%d entries >= %d, %d queued) — \
          retry after a tenant completes"
         delta_entries config.max_delta_entries queued)
