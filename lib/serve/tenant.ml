let n_tables = 2
let calib_sizes = [ 1; 5; 10; 20; 50 ]

type config = {
  name : string;
  seed : int;
  rows : int;
  horizon : int;
  limit_factor : float;
  streams : string list;
  order : Ivm.Viewdef.order;
  sync : Durable.Wal.sync option;
}

let params_of_config c =
  [
    ("name", c.name);
    ("seed", string_of_int c.seed);
    ("rows", string_of_int c.rows);
    ("horizon", string_of_int c.horizon);
    ("limit_factor", Printf.sprintf "%h" c.limit_factor);
    ("streams", String.concat ";" c.streams);
    ("order", Ivm.Viewdef.order_name c.order);
  ]
  @
  match c.sync with
  | None -> []
  | Some s -> [ ("sync", Durable.Wal.sync_to_string s) ]

let config_of_params params =
  let ( let* ) = Result.bind in
  let find key =
    match List.assoc_opt key params with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "tenant params missing %S" key)
  in
  let int_param key =
    Result.bind (find key) (fun v ->
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "bad %s parameter %S" key v))
  in
  let* name = find "name" in
  let* seed = int_param "seed" in
  let* rows = int_param "rows" in
  let* horizon = int_param "horizon" in
  let* limit_factor =
    Result.bind (find "limit_factor") (fun v ->
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad limit_factor parameter %S" v))
  in
  let* streams = Result.map (String.split_on_char ';') (find "streams") in
  (* Absent in pre-order manifests: those tenants ran first-order. *)
  let* order =
    match List.assoc_opt "order" params with
    | None -> Ok Ivm.Viewdef.First_order
    | Some v -> (
        match Ivm.Viewdef.order_of_name v with
        | Some o -> Ok o
        | None -> Error (Printf.sprintf "bad order parameter %S" v))
  in
  (* Absent means "no override": the tenant follows the service's
     durability policy (the window cadence, in grouped mode). *)
  let* sync =
    match List.assoc_opt "sync" params with
    | None -> Ok None
    | Some v -> Result.map Option.some (Durable.Wal.sync_of_string v)
  in
  Ok { name; seed; rows; horizon; limit_factor; streams; order; sync }

(* Where this tenant's records go: a private per-tenant WAL, or a handle
   on the service's shared group-commit log.  The tenant never closes or
   syncs the shared log itself — it only detaches; the window (and hence
   durability cadence) belongs to the service. *)
type log =
  | Private of Durable.Wal.t
  | Shared of Durable.Groupwal.handle

type t = {
  config : config;
  dir : string;
  arrivals : int array array;
  next_busy : int array;
      (* next_busy.(s): earliest step >= s with nonzero arrivals, or
         horizon + 1 — the event scheduler's next-arrival clock *)
  maintainer : Ivm.Maintainer.t;
  feeds : Tpcr.Updates.feeds;
  controller : Abivm.Online.controller;
  monitor : Robust.Monitor.t;
  log : log;
  base_costs : Cost.Func.t array;
  limit : float;
  mutable costs : Cost.Func.t array;  (* base_costs scaled by [corr] *)
  mutable next_step : int;
  mutable begun : bool;
      (* [next_step]'s ingest + observe already ran ([begin_step] is a
         no-op until [close_step]) — set live per step, and by replay
         when the WAL tail ends with a step's arrivals but no flush:
         that step's decision was lost mid-round, and the service
         either re-runs the round (nobody flushed — phase B re-derives
         the identical invites) or catches it up from the journal *)
  mutable corr : float;
  mutable next_allowed : int;  (* reanchor backoff *)
  mutable gap : int;
  mutable metered : float;
  mutable charged : float;  (* model-cost units, pre-discount *)
  mutable violations : int;
  mutable sheds : int;
  mutable reanchors : int;
  mutable replayed : int;
  mutable flush_log : (int * int * float * float) list;
      (* replayed flushes, newest first: (time, table, model cost of the
         batch, single-modification setup cost) — both costs evaluated
         at the replay point, i.e. under the then-current re-anchored
         model, so the service can rebuild its coordination accounting *)
}

let name t = t.config.name
let config t = t.config
let time t = t.next_step
let finished t = t.next_step > t.config.horizon
let limit t = t.limit
let metered_cost t = t.metered
let charged_cost t = t.charged
let violations t = t.violations
let sheds t = t.sheds
let reanchors t = t.reanchors
let replayed t = t.replayed
let replayed_flushes t = List.rev t.flush_log
let pending t = Abivm.Online.pending t.controller
let controller t = t.controller

let log_append t r =
  match t.log with
  | Private w -> Durable.Wal.append w r
  | Shared h -> Durable.Groupwal.append h r

let log_buffered t =
  match t.log with
  | Private w -> Durable.Wal.buffered w
  | Shared h -> Durable.Groupwal.buffered h

let log_commit t =
  match t.log with
  | Private w -> Durable.Wal.commit w
  | Shared h -> Durable.Groupwal.commit h

let delta_entries t =
  match Ivm.Maintainer.delta_view t.maintainer with
  | Some dv -> Ivm.Deltaview.entries dv
  | None -> 0

let model_cost t i k = Cost.Func.eval t.costs.(i) k

let refresh_cost t =
  let p = Abivm.Online.pending t.controller in
  let acc = ref 0.0 in
  Array.iteri (fun i k -> acc := !acc +. Cost.Func.eval t.costs.(i) k) p;
  !acc

let capacity t i = Cost.Check.max_batch t.costs.(i) ~limit:t.limit ~cap:1_000_000

let ( let* ) = Result.bind

let validate config =
  if not (Durable.Fsutil.valid_tenant_name config.name) then
    Error (Printf.sprintf "invalid tenant name %S" config.name)
  else if config.rows < 1 then Error "rows must be >= 1"
  else if config.horizon < 0 then Error "horizon must be >= 0"
  else if config.limit_factor <= 0.0 then Error "limit_factor must be > 0"
  else if List.length config.streams <> n_tables then
    Error
      (Printf.sprintf "tenant %S needs exactly %d streams" config.name n_tables)
  else if
    match config.sync with Some (Durable.Wal.Interval n) -> n <= 0 | _ -> false
  then Error (Printf.sprintf "tenant %S: sync interval must be > 0" config.name)
  else
    List.fold_left
      (fun acc text ->
        let* acc = acc in
        let* s = Workload.Arrivals.stream_of_string text in
        Ok (s :: acc))
      (Ok []) config.streams
    |> Result.map (fun streams -> Array.of_list (List.rev streams))

(* The whole tenant environment is deterministic in the config: the
   synthetic database, the update feeds, the arrival schedule, and the
   cost model (calibrated on a throwaway engine built from the same seed,
   so calibration batches never pollute the live engine's meter).  This
   is what lets a manifest holding only the params rebuild the tenant
   bit-identically at recovery. *)
let build ~dir ~mklog config =
  let* streams = validate config in
  let arrivals =
    Workload.Arrivals.generate ~seed:(config.seed + 2) ~horizon:config.horizon
      streams
  in
  let next_busy = Array.make (config.horizon + 2) (config.horizon + 1) in
  for s = config.horizon downto 0 do
    next_busy.(s) <-
      (if Array.exists (fun c -> c > 0) arrivals.(s) then s
       else next_busy.(s + 1))
  done;
  let cal =
    Tpcr.Synth.generate ~seed:config.seed ~r_rows:config.rows
      ~s_rows:config.rows ()
  in
  let cal_m =
    Ivm.Maintainer.create ~meter:cal.Tpcr.Synth.meter ~order:config.order
      (Tpcr.Synth.join_view cal)
  in
  Relation.Meter.reset cal.Tpcr.Synth.meter;
  let cal_feeds = Tpcr.Synth.insert_feeds ~seed:(config.seed + 1) cal in
  let curve table suffix =
    Bridge.Calibrate.tabulated
      ~name:(config.name ^ suffix)
      (Bridge.Calibrate.measure_curve cal_m cal_feeds ~table ~sizes:calib_sizes)
  in
  let base_costs = [| curve 0 ".dR"; curve 1 ".dS" |] in
  let limit =
    config.limit_factor
    *. Float.max
         (Cost.Func.eval base_costs.(0) 1)
         (Cost.Func.eval base_costs.(1) 1)
  in
  let db =
    Tpcr.Synth.generate ~seed:config.seed ~r_rows:config.rows
      ~s_rows:config.rows ()
  in
  let maintainer =
    Ivm.Maintainer.create ~meter:db.Tpcr.Synth.meter ~order:config.order
      (Tpcr.Synth.join_view db)
  in
  Relation.Meter.reset db.Tpcr.Synth.meter;
  let feeds = Tpcr.Synth.insert_feeds ~seed:(config.seed + 1) db in
  let controller = Abivm.Online.controller ~costs:base_costs ~limit () in
  let monitor =
    Robust.Monitor.create
      ~predicted_rates:(Workload.Arrivals.mean_rates arrivals)
      ()
  in
  let log = mklog () in
  Ok
    {
      config;
      dir;
      arrivals;
      next_busy;
      maintainer;
      feeds;
      controller;
      monitor;
      log;
      base_costs;
      limit;
      costs = base_costs;
      next_step = 0;
      begun = false;
      corr = 1.0;
      next_allowed = 0;
      gap = 2;
      metered = 0.0;
      charged = 0.0;
      violations = 0;
      sheds = 0;
      reanchors = 0;
      replayed = 0;
      flush_log = [];
    }

(* In private mode a tenant [sync] override replaces the service default;
   in grouped mode it becomes the handle's forcing policy (None defers
   entirely to the service's window cadence).  [hook] reaches the
   private WAL so crash injection can fire between two tenants'
   commits inside one scheduler round (the grouped log gets it from
   the service when it is opened). *)
let mklog_of ~dir ~sync ~hook ~group config () =
  match group with
  | Some gw ->
      Shared
        (Durable.Groupwal.attach gw ~tenant:config.name ?policy:config.sync ())
  | None ->
      let sync = Option.value config.sync ~default:sync in
      Private (Durable.Wal.open_ ~dir ~sync ~hook ())

let create ?(hook = Durable.Hook.none) ~root ?(sync = Durable.Wal.Always)
    ?group config =
  let* () =
    if Durable.Fsutil.valid_tenant_name config.name then Ok ()
    else Error (Printf.sprintf "invalid tenant name %S" config.name)
  in
  let dir = Durable.Fsutil.tenant_dir ~root ~name:config.name in
  let* () =
    match Durable.Manifest.load ~dir with
    | Ok None ->
        Durable.Manifest.save ~dir
          (Durable.Manifest.empty ~params:(params_of_config config));
        Ok ()
    | Ok (Some _) ->
        Error (Printf.sprintf "tenant %S already exists in %s" config.name root)
    | Error e -> Error (Printf.sprintf "tenant %S manifest: %s" config.name e)
  in
  build ~dir ~mklog:(mklog_of ~dir ~sync ~hook ~group config) config

(* --- one time step, in scheduler-driven phases --------------------------- *)

let begin_step t =
  if not t.begun then begin
    let time = t.next_step in
    let d = t.arrivals.(time) in
    Array.iteri
      (fun i count ->
        for _ = 1 to count do
          let change = t.feeds.Tpcr.Updates.next i in
          Ivm.Maintainer.on_arrive t.maintainer i change;
          log_append t (Durable.Record.Arrival { time; table = i; change })
        done)
      d;
    if log_buffered t > 0 then log_commit t;
    Robust.Monitor.observe_arrivals t.monitor d;
    Abivm.Online.observe t.controller ~arrivals:d;
    t.begun <- true
  end

let mandatory t =
  if t.next_step >= t.config.horizon then begin
    let p = Abivm.Online.pending t.controller in
    if Abivm.Statevec.is_zero p then None else Some p
  end
  else Abivm.Online.propose t.controller

(* Event-scheduler readiness: would this step do anything beyond a pure
   zero-arrival observe?  Ready iff arrivals land now (the precomputed
   next-arrival clock), the controller is already over the refresh limit
   ([refresh_cost > limit] is exactly [propose]'s fullness gate —
   [Spec.f] and {!refresh_cost} are the same sum — and a zero-arrival
   observe leaves pending unchanged, so evaluating before [begin_step]
   is exact), or the tenant sits at the horizon with pending work (the
   final mandatory flush).  A non-ready tenant can be stepped by
   {!idle_step} with no WAL traffic and no proposal; it stays
   invite-eligible because nothing phase B reads (pending, capacity,
   model costs) changes in a zero-arrival [begin_step]. *)
let ready t =
  let time = t.next_step in
  t.next_busy.(min time (t.config.horizon + 1)) = time
  || (time >= t.config.horizon
     && not (Abivm.Statevec.is_zero (Abivm.Online.pending t.controller)))
  || refresh_cost t > t.limit

let shed t =
  t.sheds <- t.sheds + 1;
  Telemetry.incr "serve.sheds"

let execute t batches =
  let time = t.next_step in
  Array.iteri
    (fun i k ->
      if k > 0 then begin
        let delta = Ivm.Maintainer.process t.maintainer i k in
        let cost = Relation.Meter.cost_units delta in
        log_append t (Durable.Record.Applied { time; table = i; count = k; cost });
        let expected = Cost.Func.eval t.costs.(i) k in
        Robust.Monitor.observe_cost t.monitor ~expected ~observed:cost;
        t.metered <- t.metered +. cost;
        t.charged <- t.charged +. expected
      end)
    batches;
  if log_buffered t > 0 then log_commit t;
  Abivm.Online.absorb t.controller batches

let close_step t =
  let time = t.next_step in
  let rc = refresh_cost t in
  if time < t.config.horizon && rc > t.limit then
    t.violations <- t.violations + 1;
  (* Escalation: the §4.3 controller's model has drifted from the metered
     engine — re-anchor it by the monitor's cost ratio (the replanner's
     exact correction step), with exponential backoff so a noisy tenant
     cannot thrash. *)
  if time >= t.next_allowed && Robust.Monitor.tripped t.monitor then begin
    let costs', corr' =
      Robust.Replan.reanchor ~monitor:t.monitor ~corr:t.corr t.base_costs
    in
    t.corr <- corr';
    t.costs <- costs';
    Abivm.Online.set_costs t.controller costs';
    t.reanchors <- t.reanchors + 1;
    t.next_allowed <- time + t.gap;
    t.gap <- int_of_float (Float.round (2.0 *. float_of_int t.gap))
  end;
  if Telemetry.enabled () then begin
    let labels = [ ("tenant", t.config.name) ] in
    Telemetry.set_gauge ~labels "serve.slo_headroom" ((t.limit -. rc) /. t.limit);
    Telemetry.set_gauge ~labels "serve.queue_depth"
      (float_of_int (Abivm.Statevec.total (Abivm.Online.pending t.controller)));
    Telemetry.set_gauge ~labels "serve.shed" (float_of_int t.sheds)
  end;
  t.begun <- false;
  t.next_step <- time + 1

let step t batches =
  begin_step t;
  execute t batches;
  close_step t

(* One zero-work step: the identical call sequence the lockstep scheduler
   makes for a tenant whose proposal is [None] and who is not invited —
   minus the pool dispatch.  [execute] on an all-zero batch journals
   nothing and [absorb] is a no-op, so only the observe/close
   bookkeeping advances, exactly as in a lockstep round. *)
let idle_step t =
  begin_step t;
  execute t (Array.make n_tables 0);
  close_step t

let finish t =
  let consistent = Ivm.Maintainer.check_consistent t.maintainer = Ok () in
  (match t.log with
  | Private w -> Durable.Wal.close w
  | Shared h -> Durable.Groupwal.detach h);
  consistent

let abandon t =
  match t.log with
  | Private w -> Durable.Wal.abandon w
  | Shared h -> Durable.Groupwal.detach h

(* --- recovery ------------------------------------------------------------ *)

(* Replay drives on the deterministic schedule, not on the records: step
   [time] expects [arrivals.(time).(i)] Arrival records per table (in
   table order — exactly the order [begin_step] journals them), then any
   Applied records for that step.  Every replayed arrival is re-drawn
   from the feeds and must encode to the identical WAL line; every
   replayed batch must re-meter to the bit-identical cost.  A record tail
   cut mid-ingest (a crash between arrival commits) is completed: the
   missing arrivals of that step are drawn, ingested and journalled, so a
   committed arrival is never dropped and the schedule stays whole.  A
   trailing step whose arrivals committed but whose flush never did is
   left OPEN ([begun] set, [close_step] not called): its flush decision
   died with the crash, and only the service can reproduce it — by
   re-running the round (no tenant flushed, so phase B re-derives the
   identical invites) or from the phase-B journal (some did). *)
let replay t records =
  let rest = ref records in
  let result = ref (Ok ()) in
  let fail msg = if !result = Ok () then result := Error msg in
  while !rest <> [] && !result = Ok () do
    let time = t.next_step in
    if time > t.config.horizon then
      fail (Printf.sprintf "%s: WAL extends past horizon %d" t.config.name
              t.config.horizon)
    else begin
      let d = t.arrivals.(time) in
      let topped_up = ref false in
      for i = 0 to n_tables - 1 do
        for _ = 1 to d.(i) do
          if !result = Ok () then
            match !rest with
            | Durable.Record.Arrival { time = rt; table; change } :: tl
              when rt = time && table = i ->
                let drawn = t.feeds.Tpcr.Updates.next i in
                let recorded =
                  Durable.Record.to_line
                    (Durable.Record.Arrival { time; table = i; change })
                in
                let redrawn =
                  Durable.Record.to_line
                    (Durable.Record.Arrival { time; table = i; change = drawn })
                in
                if recorded <> redrawn then
                  fail
                    (Printf.sprintf
                       "%s: t=%d table %d: journalled arrival differs from \
                        the deterministic feed"
                       t.config.name time i)
                else begin
                  Ivm.Maintainer.on_arrive t.maintainer i drawn;
                  t.replayed <- t.replayed + 1;
                  rest := tl
                end
            | [] ->
                (* Crash mid-ingest: finish this step's arrivals live. *)
                topped_up := true;
                let change = t.feeds.Tpcr.Updates.next i in
                Ivm.Maintainer.on_arrive t.maintainer i change;
                log_append t (Durable.Record.Arrival { time; table = i; change })
            | _ :: _ ->
                fail
                  (Printf.sprintf
                     "%s: t=%d table %d: WAL does not match the tenant's \
                      deterministic arrival schedule"
                     t.config.name time i)
        done
      done;
      if !topped_up && log_buffered t > 0 then log_commit t;
      if !result = Ok () then begin
        (match !rest with
        | Durable.Record.Arrival { time = rt; _ } :: _ when rt = time ->
            fail
              (Printf.sprintf "%s: t=%d: more arrivals than the schedule"
                 t.config.name time)
        | _ -> ());
        Robust.Monitor.observe_arrivals t.monitor d;
        Abivm.Online.observe t.controller ~arrivals:d;
        let batches = Array.make n_tables 0 in
        let applied_any = ref false in
        let continue_applied = ref true in
        while !continue_applied && !result = Ok () do
          match !rest with
          | Durable.Record.Applied { time = rt; table; count; cost } :: tl
            when rt = time ->
              if table < 0 || table >= n_tables then
                fail
                  (Printf.sprintf "%s: applied record for unknown table %d"
                     t.config.name table)
              else begin
                let delta = Ivm.Maintainer.process t.maintainer table count in
                let recomputed = Relation.Meter.cost_units delta in
                if
                  Int64.bits_of_float recomputed <> Int64.bits_of_float cost
                then
                  fail
                    (Printf.sprintf
                       "%s: t=%d table %d: replayed cost %.17g differs from \
                        recorded %.17g — non-deterministic replay"
                       t.config.name time table recomputed cost)
                else begin
                  let expected = Cost.Func.eval t.costs.(table) count in
                  Robust.Monitor.observe_cost t.monitor ~expected
                    ~observed:recomputed;
                  t.metered <- t.metered +. recomputed;
                  t.charged <- t.charged +. expected;
                  t.flush_log <-
                    (time, table, expected, Cost.Func.eval t.costs.(table) 1)
                    :: t.flush_log;
                  batches.(table) <- batches.(table) + count;
                  t.replayed <- t.replayed + 1;
                  applied_any := true;
                  rest := tl
                end
              end
          | _ -> continue_applied := false
        done;
        if !result = Ok () then
          if (not !applied_any) && !rest = [] then
            (* The WAL tail ends with this step's arrivals and no flush.
               [execute] commits a step's Applied records atomically, so
               this is a crash between the ingest and the flush decision
               — NOT evidence of a no-flush step (a closed no-flush step
               is always followed by later records).  Leave the step
               open: the ingest ran, the flush belongs to the service
               (re-run round or journal catch-up). *)
            t.begun <- true
          else begin
            Abivm.Online.absorb t.controller batches;
            close_step t
          end
      end
    end
  done;
  Result.map (fun () -> t.replayed) !result

let recover ?(hook = Durable.Hook.none) ~root ?(sync = Durable.Wal.Always)
    ?group ?records config =
  let dir =
    Filename.concat (Filename.concat root "tenants") config.name
  in
  if not (Sys.file_exists dir) then
    Error (Printf.sprintf "tenant %S: no durable state in %s" config.name root)
  else
    let* records =
      match (records, group) with
      | Some r, _ -> Ok r
      | None, Some _ ->
          (* The shared log can only be demuxed once for all tenants —
             the service does that and passes each slice down. *)
          Error
            (Printf.sprintf
               "tenant %S: grouped recovery requires pre-demuxed records"
               config.name)
      | None, None -> (
          match Durable.Wal.read ~dir ~from_lsn:0 with
          | Ok records -> Ok records
          | Error e -> Error (Printf.sprintf "tenant %S wal: %s" config.name e))
    in
    let* t = build ~dir ~mklog:(mklog_of ~dir ~sync ~hook ~group config) config in
    let* _replayed = replay t records in
    Ok t
