let n_tables = 2
let calib_sizes = [ 1; 5; 10; 20; 50 ]

type config = {
  name : string;
  seed : int;
  rows : int;
  horizon : int;
  limit_factor : float;
  streams : string list;
  order : Ivm.Viewdef.order;
}

let params_of_config c =
  [
    ("name", c.name);
    ("seed", string_of_int c.seed);
    ("rows", string_of_int c.rows);
    ("horizon", string_of_int c.horizon);
    ("limit_factor", Printf.sprintf "%h" c.limit_factor);
    ("streams", String.concat ";" c.streams);
    ("order", Ivm.Viewdef.order_name c.order);
  ]

let config_of_params params =
  let ( let* ) = Result.bind in
  let find key =
    match List.assoc_opt key params with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "tenant params missing %S" key)
  in
  let int_param key =
    Result.bind (find key) (fun v ->
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "bad %s parameter %S" key v))
  in
  let* name = find "name" in
  let* seed = int_param "seed" in
  let* rows = int_param "rows" in
  let* horizon = int_param "horizon" in
  let* limit_factor =
    Result.bind (find "limit_factor") (fun v ->
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad limit_factor parameter %S" v))
  in
  let* streams = Result.map (String.split_on_char ';') (find "streams") in
  (* Absent in pre-order manifests: those tenants ran first-order. *)
  let* order =
    match List.assoc_opt "order" params with
    | None -> Ok Ivm.Viewdef.First_order
    | Some v -> (
        match Ivm.Viewdef.order_of_name v with
        | Some o -> Ok o
        | None -> Error (Printf.sprintf "bad order parameter %S" v))
  in
  Ok { name; seed; rows; horizon; limit_factor; streams; order }

type t = {
  config : config;
  dir : string;
  arrivals : int array array;
  maintainer : Ivm.Maintainer.t;
  feeds : Tpcr.Updates.feeds;
  controller : Abivm.Online.controller;
  monitor : Robust.Monitor.t;
  wal : Durable.Wal.t;
  base_costs : Cost.Func.t array;
  limit : float;
  mutable costs : Cost.Func.t array;  (* base_costs scaled by [corr] *)
  mutable next_step : int;
  mutable corr : float;
  mutable next_allowed : int;  (* reanchor backoff *)
  mutable gap : int;
  mutable metered : float;
  mutable charged : float;  (* model-cost units, pre-discount *)
  mutable violations : int;
  mutable sheds : int;
  mutable reanchors : int;
  mutable replayed : int;
  mutable flush_log : (int * int * float * float) list;
      (* replayed flushes, newest first: (time, table, model cost of the
         batch, single-modification setup cost) — both costs evaluated
         at the replay point, i.e. under the then-current re-anchored
         model, so the service can rebuild its coordination accounting *)
}

let name t = t.config.name
let config t = t.config
let time t = t.next_step
let finished t = t.next_step > t.config.horizon
let limit t = t.limit
let metered_cost t = t.metered
let charged_cost t = t.charged
let violations t = t.violations
let sheds t = t.sheds
let reanchors t = t.reanchors
let replayed t = t.replayed
let replayed_flushes t = List.rev t.flush_log
let pending t = Abivm.Online.pending t.controller
let controller t = t.controller

let delta_entries t =
  match Ivm.Maintainer.delta_view t.maintainer with
  | Some dv -> Ivm.Deltaview.entries dv
  | None -> 0

let model_cost t i k = Cost.Func.eval t.costs.(i) k

let refresh_cost t =
  let p = Abivm.Online.pending t.controller in
  let acc = ref 0.0 in
  Array.iteri (fun i k -> acc := !acc +. Cost.Func.eval t.costs.(i) k) p;
  !acc

let capacity t i = Cost.Check.max_batch t.costs.(i) ~limit:t.limit ~cap:1_000_000

let ( let* ) = Result.bind

let validate config =
  if not (Durable.Fsutil.valid_tenant_name config.name) then
    Error (Printf.sprintf "invalid tenant name %S" config.name)
  else if config.rows < 1 then Error "rows must be >= 1"
  else if config.horizon < 0 then Error "horizon must be >= 0"
  else if config.limit_factor <= 0.0 then Error "limit_factor must be > 0"
  else if List.length config.streams <> n_tables then
    Error
      (Printf.sprintf "tenant %S needs exactly %d streams" config.name n_tables)
  else
    List.fold_left
      (fun acc text ->
        let* acc = acc in
        let* s = Workload.Arrivals.stream_of_string text in
        Ok (s :: acc))
      (Ok []) config.streams
    |> Result.map (fun streams -> Array.of_list (List.rev streams))

(* The whole tenant environment is deterministic in the config: the
   synthetic database, the update feeds, the arrival schedule, and the
   cost model (calibrated on a throwaway engine built from the same seed,
   so calibration batches never pollute the live engine's meter).  This
   is what lets a manifest holding only the params rebuild the tenant
   bit-identically at recovery. *)
let build ~dir ~sync config =
  let* streams = validate config in
  let arrivals =
    Workload.Arrivals.generate ~seed:(config.seed + 2) ~horizon:config.horizon
      streams
  in
  let cal =
    Tpcr.Synth.generate ~seed:config.seed ~r_rows:config.rows
      ~s_rows:config.rows ()
  in
  let cal_m =
    Ivm.Maintainer.create ~meter:cal.Tpcr.Synth.meter ~order:config.order
      (Tpcr.Synth.join_view cal)
  in
  Relation.Meter.reset cal.Tpcr.Synth.meter;
  let cal_feeds = Tpcr.Synth.insert_feeds ~seed:(config.seed + 1) cal in
  let curve table suffix =
    Bridge.Calibrate.tabulated
      ~name:(config.name ^ suffix)
      (Bridge.Calibrate.measure_curve cal_m cal_feeds ~table ~sizes:calib_sizes)
  in
  let base_costs = [| curve 0 ".dR"; curve 1 ".dS" |] in
  let limit =
    config.limit_factor
    *. Float.max
         (Cost.Func.eval base_costs.(0) 1)
         (Cost.Func.eval base_costs.(1) 1)
  in
  let db =
    Tpcr.Synth.generate ~seed:config.seed ~r_rows:config.rows
      ~s_rows:config.rows ()
  in
  let maintainer =
    Ivm.Maintainer.create ~meter:db.Tpcr.Synth.meter ~order:config.order
      (Tpcr.Synth.join_view db)
  in
  Relation.Meter.reset db.Tpcr.Synth.meter;
  let feeds = Tpcr.Synth.insert_feeds ~seed:(config.seed + 1) db in
  let controller = Abivm.Online.controller ~costs:base_costs ~limit () in
  let monitor =
    Robust.Monitor.create
      ~predicted_rates:(Workload.Arrivals.mean_rates arrivals)
      ()
  in
  let wal = Durable.Wal.open_ ~dir ~sync () in
  Ok
    {
      config;
      dir;
      arrivals;
      maintainer;
      feeds;
      controller;
      monitor;
      wal;
      base_costs;
      limit;
      costs = base_costs;
      next_step = 0;
      corr = 1.0;
      next_allowed = 0;
      gap = 2;
      metered = 0.0;
      charged = 0.0;
      violations = 0;
      sheds = 0;
      reanchors = 0;
      replayed = 0;
      flush_log = [];
    }

let create ~root ?(sync = Durable.Wal.Always) config =
  let* () =
    if Durable.Fsutil.valid_tenant_name config.name then Ok ()
    else Error (Printf.sprintf "invalid tenant name %S" config.name)
  in
  let dir = Durable.Fsutil.tenant_dir ~root ~name:config.name in
  let* () =
    match Durable.Manifest.load ~dir with
    | Ok None ->
        Durable.Manifest.save ~dir
          (Durable.Manifest.empty ~params:(params_of_config config));
        Ok ()
    | Ok (Some _) ->
        Error (Printf.sprintf "tenant %S already exists in %s" config.name root)
    | Error e -> Error (Printf.sprintf "tenant %S manifest: %s" config.name e)
  in
  build ~dir ~sync config

(* --- one time step, in scheduler-driven phases --------------------------- *)

let begin_step t =
  let time = t.next_step in
  let d = t.arrivals.(time) in
  Array.iteri
    (fun i count ->
      for _ = 1 to count do
        let change = t.feeds.Tpcr.Updates.next i in
        Ivm.Maintainer.on_arrive t.maintainer i change;
        Durable.Wal.append t.wal
          (Durable.Record.Arrival { time; table = i; change })
      done)
    d;
  if Durable.Wal.buffered t.wal > 0 then Durable.Wal.commit t.wal;
  Robust.Monitor.observe_arrivals t.monitor d;
  Abivm.Online.observe t.controller ~arrivals:d

let mandatory t =
  if t.next_step >= t.config.horizon then begin
    let p = Abivm.Online.pending t.controller in
    if Abivm.Statevec.is_zero p then None else Some p
  end
  else Abivm.Online.propose t.controller

let shed t =
  t.sheds <- t.sheds + 1;
  Telemetry.incr "serve.sheds"

let execute t batches =
  let time = t.next_step in
  Array.iteri
    (fun i k ->
      if k > 0 then begin
        let delta = Ivm.Maintainer.process t.maintainer i k in
        let cost = Relation.Meter.cost_units delta in
        Durable.Wal.append t.wal
          (Durable.Record.Applied { time; table = i; count = k; cost });
        let expected = Cost.Func.eval t.costs.(i) k in
        Robust.Monitor.observe_cost t.monitor ~expected ~observed:cost;
        t.metered <- t.metered +. cost;
        t.charged <- t.charged +. expected
      end)
    batches;
  if Durable.Wal.buffered t.wal > 0 then Durable.Wal.commit t.wal;
  Abivm.Online.absorb t.controller batches

let close_step t =
  let time = t.next_step in
  let rc = refresh_cost t in
  if time < t.config.horizon && rc > t.limit then
    t.violations <- t.violations + 1;
  (* Escalation: the §4.3 controller's model has drifted from the metered
     engine — re-anchor it by the monitor's cost ratio (the replanner's
     exact correction step), with exponential backoff so a noisy tenant
     cannot thrash. *)
  if time >= t.next_allowed && Robust.Monitor.tripped t.monitor then begin
    let costs', corr' =
      Robust.Replan.reanchor ~monitor:t.monitor ~corr:t.corr t.base_costs
    in
    t.corr <- corr';
    t.costs <- costs';
    Abivm.Online.set_costs t.controller costs';
    t.reanchors <- t.reanchors + 1;
    t.next_allowed <- time + t.gap;
    t.gap <- int_of_float (Float.round (2.0 *. float_of_int t.gap))
  end;
  if Telemetry.enabled () then begin
    let labels = [ ("tenant", t.config.name) ] in
    Telemetry.set_gauge ~labels "serve.slo_headroom" ((t.limit -. rc) /. t.limit);
    Telemetry.set_gauge ~labels "serve.queue_depth"
      (float_of_int (Abivm.Statevec.total (Abivm.Online.pending t.controller)));
    Telemetry.set_gauge ~labels "serve.shed" (float_of_int t.sheds)
  end;
  t.next_step <- time + 1

let step t batches =
  begin_step t;
  execute t batches;
  close_step t

let finish t =
  let consistent = Ivm.Maintainer.check_consistent t.maintainer = Ok () in
  Durable.Wal.close t.wal;
  consistent

let abandon t = Durable.Wal.abandon t.wal

(* --- recovery ------------------------------------------------------------ *)

(* Replay drives on the deterministic schedule, not on the records: step
   [time] expects [arrivals.(time).(i)] Arrival records per table (in
   table order — exactly the order [begin_step] journals them), then any
   Applied records for that step.  Every replayed arrival is re-drawn
   from the feeds and must encode to the identical WAL line; every
   replayed batch must re-meter to the bit-identical cost.  A record tail
   cut mid-ingest (a crash between arrival commits) is completed: the
   missing arrivals of that step are drawn, ingested and journalled, so a
   committed arrival is never dropped and the schedule stays whole.  A
   step whose arrivals all committed but whose flush was lost replays as
   a no-flush step; the still-pending work is flushed by a later step. *)
let replay t records =
  let rest = ref records in
  let result = ref (Ok ()) in
  let fail msg = if !result = Ok () then result := Error msg in
  while !rest <> [] && !result = Ok () do
    let time = t.next_step in
    if time > t.config.horizon then
      fail (Printf.sprintf "%s: WAL extends past horizon %d" t.config.name
              t.config.horizon)
    else begin
      let d = t.arrivals.(time) in
      let topped_up = ref false in
      for i = 0 to n_tables - 1 do
        for _ = 1 to d.(i) do
          if !result = Ok () then
            match !rest with
            | Durable.Record.Arrival { time = rt; table; change } :: tl
              when rt = time && table = i ->
                let drawn = t.feeds.Tpcr.Updates.next i in
                let recorded =
                  Durable.Record.to_line
                    (Durable.Record.Arrival { time; table = i; change })
                in
                let redrawn =
                  Durable.Record.to_line
                    (Durable.Record.Arrival { time; table = i; change = drawn })
                in
                if recorded <> redrawn then
                  fail
                    (Printf.sprintf
                       "%s: t=%d table %d: journalled arrival differs from \
                        the deterministic feed"
                       t.config.name time i)
                else begin
                  Ivm.Maintainer.on_arrive t.maintainer i drawn;
                  t.replayed <- t.replayed + 1;
                  rest := tl
                end
            | [] ->
                (* Crash mid-ingest: finish this step's arrivals live. *)
                topped_up := true;
                let change = t.feeds.Tpcr.Updates.next i in
                Ivm.Maintainer.on_arrive t.maintainer i change;
                Durable.Wal.append t.wal
                  (Durable.Record.Arrival { time; table = i; change })
            | _ :: _ ->
                fail
                  (Printf.sprintf
                     "%s: t=%d table %d: WAL does not match the tenant's \
                      deterministic arrival schedule"
                     t.config.name time i)
        done
      done;
      if !topped_up && Durable.Wal.buffered t.wal > 0 then
        Durable.Wal.commit t.wal;
      if !result = Ok () then begin
        (match !rest with
        | Durable.Record.Arrival { time = rt; _ } :: _ when rt = time ->
            fail
              (Printf.sprintf "%s: t=%d: more arrivals than the schedule"
                 t.config.name time)
        | _ -> ());
        Robust.Monitor.observe_arrivals t.monitor d;
        Abivm.Online.observe t.controller ~arrivals:d;
        let batches = Array.make n_tables 0 in
        let continue_applied = ref true in
        while !continue_applied && !result = Ok () do
          match !rest with
          | Durable.Record.Applied { time = rt; table; count; cost } :: tl
            when rt = time ->
              if table < 0 || table >= n_tables then
                fail
                  (Printf.sprintf "%s: applied record for unknown table %d"
                     t.config.name table)
              else begin
                let delta = Ivm.Maintainer.process t.maintainer table count in
                let recomputed = Relation.Meter.cost_units delta in
                if
                  Int64.bits_of_float recomputed <> Int64.bits_of_float cost
                then
                  fail
                    (Printf.sprintf
                       "%s: t=%d table %d: replayed cost %.17g differs from \
                        recorded %.17g — non-deterministic replay"
                       t.config.name time table recomputed cost)
                else begin
                  let expected = Cost.Func.eval t.costs.(table) count in
                  Robust.Monitor.observe_cost t.monitor ~expected
                    ~observed:recomputed;
                  t.metered <- t.metered +. recomputed;
                  t.charged <- t.charged +. expected;
                  t.flush_log <-
                    (time, table, expected, Cost.Func.eval t.costs.(table) 1)
                    :: t.flush_log;
                  batches.(table) <- batches.(table) + count;
                  t.replayed <- t.replayed + 1;
                  rest := tl
                end
              end
          | _ -> continue_applied := false
        done;
        if !result = Ok () then begin
          Abivm.Online.absorb t.controller batches;
          close_step t
        end
      end
    end
  done;
  Result.map (fun () -> t.replayed) !result

let recover ~root ?(sync = Durable.Wal.Always) config =
  let dir =
    Filename.concat (Filename.concat root "tenants") config.name
  in
  if not (Sys.file_exists dir) then
    Error (Printf.sprintf "tenant %S: no durable state in %s" config.name root)
  else
    let* records =
      match Durable.Wal.read ~dir ~from_lsn:0 with
      | Ok records -> Ok records
      | Error e -> Error (Printf.sprintf "tenant %S wal: %s" config.name e)
    in
    let* t = build ~dir ~sync config in
    let* _replayed = replay t records in
    Ok t
