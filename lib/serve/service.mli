(** The multi-tenant maintenance service behind [abivm serve].

    Tenants register with a {!Tenant.config}; {!Admission} admits,
    queues, or rejects them.  {!run} then drives every active tenant in
    rounds, each round one time step per tenant, in three phases (under
    the {!scheduler} of choice — [Event] only dispatches tenants whose
    step does real work; [Lockstep] dispatches everyone):

    + {b ingest + propose} (parallelizable over a {!Parallel.Pool}):
      each tenant journals its arrivals into its private WAL (group
      commit, one commit per step) and its §4.3 ONLINE controller
      proposes the mandatory flush — per-tenant state only, so the
      fan-out is bit-identical to sequential execution;
    + {b coordinate} (sequential): tenants forced to flush a base table
      invite the others whose own flush of that table is nearly due
      (the multiview piggyback rule); joins are optional work that the
      shed budget may refuse (backpressure — arrivals are never shed,
      only extra flush work).  Each table's combined work is priced by
      {!Multiview.Coordinator.charge_shared} with a discount
      proportional to the cheapest participant's single-modification
      cost;
    + {b execute + close} (parallelizable): each tenant processes its
      batches on its engine, journals [Applied] records with metered
      costs, and closes the step (SLO accounting, drift-triggered
      re-anchoring, per-tenant gauges).

    Completed tenants are consistency-checked, their WALs closed, and
    queued tenants promoted into the freed slots.

    The root directory holds a service manifest (coordination
    parameters + admitted tenants in registration order) and one
    durability directory per tenant; {!recover} rebuilds the whole
    service from those files alone and replays every tenant's WAL. *)

type wal_mode =
  | Grouped
      (** one shared group-commit log ({!Durable.Groupwal}) multiplexes
          every tenant; a scheduler round costs one fsync total (the
          window close), not one per tenant *)
  | Private  (** the original per-tenant WAL under [root/tenants/<name>] *)

type scheduler =
  | Event
      (** ready-queue scheduling: each round only dispatches tenants
          whose per-tenant next-arrival clock, refresh budget, or
          horizon makes the step do real work; idle tenants advance
          inline with no WAL traffic, no proposal and no pool dispatch.
          Bit-identical to [Lockstep] by construction (one shared round
          code path under a ready mask). *)
  | Lockstep  (** every active tenant dispatched every round *)

type config = {
  admission : Admission.config;
  coordinate : bool;  (** enable cross-tenant piggyback co-flushes *)
  discount_factor : float;
      (** co-flush discount as a fraction of the cheapest participant's
          single-modification cost (>= 0; 0 disables discounts) *)
  shed_budget : float option;
      (** model-cost budget per round; optional joins beyond it are shed *)
  sync : Durable.Wal.sync;
      (** durability cadence.  [Private] mode: each tenant WAL's sync
          policy (unless the tenant overrides it).  [Grouped] mode: the
          shared window cadence — [Always] closes (one fsync) every
          round, [Interval n] every n-th round, [Never] only at rotation
          and shutdown.  Tenants with a [Some] {!Tenant.config.sync}
          force additional closes at their own commits. *)
  wal_mode : wal_mode;
  scheduler : scheduler;
  hook : Durable.Hook.point -> unit;
      (** fires [Step_start round] before every round — crash injection *)
}

val default_config : config
(** Coordinating, no discounts, no shed budget, [sync = Always],
    grouped WAL, event scheduler. *)

type tenant_outcome = {
  tenant : string;
  steps : int;
  metered_cost : float;  (** engine meter units *)
  charged_cost : float;  (** model units, pre-discount *)
  violations : int;  (** steps that ended still over the budget [C] *)
  violation_rate : float;
  sheds : int;
  reanchors : int;
  consistent : bool;
  replayed : int;  (** WAL records replayed at recovery (0 if fresh) *)
}

type outcome = {
  tenants : tenant_outcome list;  (** registration order *)
  rounds : int;
  aggregate_charged : float;  (** co-flush-discounted model cost *)
  aggregate_undiscounted : float;
  co_flushes : int;
  worst_violation_rate : float;
  rejected : int;
  queued_peak : int;
}

type t

val create : ?pool:Parallel.Pool.t -> root:string -> config -> t
(** Fresh service over [root] (created if missing); writes the service
    manifest.  Raises [Invalid_argument] on a negative
    [discount_factor]. *)

val register : t -> Tenant.config -> (Admission.decision, string) result
(** Apply admission: [Admit] builds the tenant now (manifest + WAL under
    [root/tenants/<name>]), [Queue] defers creation until a slot frees,
    [Reject] counts against the outcome.  [Error] only when an admitted
    tenant fails to build. *)

val run : t -> outcome
(** Drive rounds until every registered tenant (including queued ones)
    has completed its horizon.  If the hook raises {!Durable.Hook.Crash}
    the active tenants' WALs are abandoned unflushed (simulating the
    process dying) and the exception propagates. *)

val recover : ?pool:Parallel.Pool.t -> root:string -> unit -> (t, string) result
(** Rebuild the service from the root manifest and every admitted
    tenant's manifest + WAL ({!Tenant.recover} — deterministic re-draw
    and bit-exact re-metering, verified).  The returned service resumes
    at the furthest global round any tenant's WAL reached; tenants whose
    replay stopped short (trailing zero-arrival steps leave no WAL
    trace) catch those steps up solo at the start of {!run}, restoring
    the lockstep alignment the co-flush structure depends on.  The
    replayed flushes' coordination accounting is rebuilt group by group,
    so after a crash at a round boundary the finished run's outcome —
    per-tenant costs, aggregates, discounts, co-flush counts and round
    numbering — is bit-identical to the uninterrupted run's.  A crash
    mid-round that loses a not-yet-durable co-flush participant is
    covered by the phase-B journal: the manifest records every flusher's
    final batch row (durably, before phase C), so catch-up re-executes
    the identical decision and the regrouped charge reproduces the lost
    round's discount exactly.  (Sub-record torn writes inside one commit
    batch remain a valid-but-different execution, as before.) *)

val total_replayed : t -> int
(** WAL records replayed across all recovered tenants. *)

val rounds : t -> int
val idle_rounds : t -> int
(** Rounds the event scheduler retired with no ready tenant (no pool
    dispatch, no WAL bytes, no window work). *)

val window_closes : t -> int
(** Shared-window fsyncs so far (0 in [Private] mode). *)

val forced_closes : t -> int
(** The subset of {!window_closes} forced by per-tenant sync policies. *)

val tenant_records :
  root:string -> name:string -> (Durable.Record.t list, string) result
(** A tenant's durable record sequence, wherever it physically lives:
    demuxed from the shared group log when [root/groupwal] exists, read
    from the private per-tenant WAL otherwise. *)

val sync_to_string : Durable.Wal.sync -> string
val sync_of_string : string -> (Durable.Wal.sync, string) result
val config_of_params :
  (string * string) list -> (config * (string * int) list, string) result
(** The service-manifest decoding: configuration plus admitted tenants
    in registration order, each with its admission round. *)
