(** One tenant of the [abivm serve] maintenance service.

    A tenant is a registered (view, refresh budget, arrival stream)
    triple: a synthetic two-table join view ({!Tpcr.Synth}), a response
    time constraint [C] derived from its own calibrated cost curves, and
    a seeded arrival schedule.  Each tenant owns a live maintenance
    engine, a §4.3 ONLINE controller over costs calibrated on a
    throwaway engine built from the same seed (so model and meter agree
    on units), a {!Robust.Monitor} watching metered costs for drift, and
    a private {!Durable.Wal} under [root/tenants/<name>].

    The whole environment is deterministic in {!config}, which is also
    exactly what the tenant's manifest persists — recovery rebuilds the
    tenant from its params and replays the WAL, re-drawing every
    journalled arrival from the feeds and re-metering every batch, both
    verified bit-exactly against the records.

    The per-step API is split into scheduler-driven phases so
    {!Service} can interleave many tenants: {!begin_step} (ingest +
    observe, journalled), {!mandatory} (the controller's proposal — or
    the full pending flush at the horizon), {!execute} (process the
    possibly coordinator-enlarged batches, journalled), {!close_step}
    (SLO bookkeeping, drift escalation via {!Robust.Replan.reanchor},
    per-tenant gauges).  {!step} chains all four for standalone use. *)

val n_tables : int
(** Tenant views span exactly 2 base tables (R and S). *)

type config = {
  name : string;  (** must satisfy {!Durable.Fsutil.valid_tenant_name} *)
  seed : int;
  rows : int;  (** synthetic rows per base table *)
  horizon : int;
  limit_factor : float;
      (** the refresh budget [C] as a multiple of the dearer table's
          calibrated single-modification cost *)
  streams : string list;
      (** per-table arrival stream descriptors
          ({!Workload.Arrivals.stream_of_string} grammar), length 2 *)
  order : Ivm.Viewdef.order;
      (** maintenance order of the tenant's engine (and of the
          calibration twin, so the cost model prices the same paths);
          higher-order tenants materialize delta views, charged against
          the service's {!Admission} memory budget.  Manifests persist it
          as ["order"]; absent (pre-order manifests) means first-order. *)
  sync : Durable.Wal.sync option;
      (** per-tenant durability override.  [None] follows the service
          policy (private mode: the service-wide WAL sync; grouped mode:
          the shared window cadence).  [Some p] in private mode opens the
          tenant WAL with [p]; in grouped mode it becomes the handle's
          forcing policy — [Always] closes the shared window at every one
          of this tenant's commits, [Interval n] at every n-th.
          Manifests persist it as ["sync"]; absent means [None]. *)
}

val params_of_config : config -> (string * string) list
val config_of_params : (string * string) list -> (config, string) result

type t

val create :
  ?hook:(Durable.Hook.point -> unit) ->
  root:string ->
  ?sync:Durable.Wal.sync ->
  ?group:Durable.Groupwal.t ->
  config ->
  (t, string) result
(** Build the tenant fresh: calibrate, construct the engine, write the
    manifest (refusing a name whose directory already holds one), open
    the log.  Without [group]: a private WAL under the tenant directory,
    synced per [config.sync] (falling back to [sync], default [Always]).
    With [group]: a handle on the service's shared group-commit log,
    with [config.sync] as the forcing policy. *)

val recover :
  ?hook:(Durable.Hook.point -> unit) ->
  root:string ->
  ?sync:Durable.Wal.sync ->
  ?group:Durable.Groupwal.t ->
  ?records:Durable.Record.t list ->
  config ->
  (t, string) result
(** Rebuild the tenant from its config and replay its journal — the
    private WAL's records, or (grouped mode) this tenant's pre-demuxed
    slice of the shared log, which the caller must pass as [records].
    Every journalled arrival must equal the deterministic feed's re-draw
    and every batch must re-meter to the bit-identical cost; a tail cut
    mid-step is completed (the missing arrivals are drawn and
    journalled), so no committed arrival is ever dropped.  The tenant
    resumes at the step after the last journalled one. *)

(** {1 Inspection} *)

val name : t -> string
val config : t -> config
val time : t -> int  (** next step to execute *)

val finished : t -> bool
val limit : t -> float  (** the absolute refresh budget [C] *)

val pending : t -> Abivm.Statevec.t
val refresh_cost : t -> float  (** model cost of flushing everything pending *)

val capacity : t -> int -> int
(** Largest batch of table [i] within the budget under the current
    (re-anchored) cost model. *)

val model_cost : t -> int -> int -> float
(** [model_cost t i k] — current model cost of a [k]-batch of table [i]. *)

val controller : t -> Abivm.Online.controller

val delta_entries : t -> int
(** Current {!Ivm.Deltaview} materialization size (total subtuple
    entries); 0 for first-order tenants.  The service charges this
    against {!Admission.config.max_delta_entries}. *)

val metered_cost : t -> float
val charged_cost : t -> float  (** model-cost units, pre-discount *)

val violations : t -> int
val sheds : t -> int
val reanchors : t -> int
val replayed : t -> int

val replayed_flushes : t -> (int * int * float * float) list
(** Every flush replayed from the WAL, in replay order:
    [(time, table, model cost of the batch, single-modification setup
    cost)], both costs evaluated under the re-anchored model current at
    that point of the replay — exactly the inputs the service's
    coordination accounting used live, letting {!Service.recover}
    rebuild the discounted aggregate for the replayed portion. *)

(** {1 Scheduler-driven stepping} *)

val begin_step : t -> unit
(** Ingest this step's arrivals (drawn from the feeds, journalled and
    committed as one batch) and observe them in the monitor and the
    controller. *)

val mandatory : t -> Abivm.Statevec.t option
(** The non-negotiable flush for this step: the controller's proposal
    when the constraint is violated, the full pending vector at the
    horizon, [None] otherwise.  Pure — the coordinator may enlarge the
    result before {!execute} but must never shrink it. *)

val ready : t -> bool
(** Would this tenant's next step do anything beyond a pure zero-arrival
    observe?  True iff arrivals land at the current step (per the
    precomputed next-arrival clock), the refresh cost already exceeds
    the budget (so {!mandatory} would fire — the check is exact, not a
    heuristic), or the tenant is at the horizon with pending work.  The
    event scheduler steps non-ready tenants with {!idle_step}; they stay
    invite-eligible because nothing phase B reads changes in a
    zero-arrival [begin_step]. *)

val idle_step : t -> unit
(** [begin_step]; [execute] all-zero; [close_step] — the exact call
    sequence a lockstep round makes for an uninvited no-proposal tenant,
    so event-mode idling is bit-identical to lockstep by construction.
    Journals nothing (there are no arrivals to ingest). *)

val shed : t -> unit
(** Record that optional co-flush work for this tenant was shed by the
    scheduler's backpressure. *)

val execute : t -> int array -> unit
(** Process the batches (per table), journal each as an [Applied] record
    with its metered cost, commit, feed the monitor, and absorb the
    batches into the controller's bookkeeping. *)

val close_step : t -> unit
(** SLO accounting (a step ending still over budget counts as a
    violation), drift escalation ({!Robust.Replan.reanchor} +
    [Online.set_costs] under exponential backoff), per-tenant telemetry
    gauges ([serve.slo_headroom], [serve.queue_depth], [serve.shed]),
    and the step counter. *)

val step : t -> int array -> unit
(** [begin_step]; [execute]; [close_step] — standalone single-tenant
    stepping (the scheduler calls the phases itself). *)

val finish : t -> bool
(** Final consistency check (incremental content vs from-scratch
    recompute) and log close — private WALs are flushed and closed,
    shared-log handles only detach (the window belongs to the service).
    [true] iff consistent. *)

val abandon : t -> unit
(** Simulated-crash shutdown: close the private WAL without flushing, or
    detach from the shared log (whose open window the service abandons
    separately). *)
