(* Minimal JSON rendering — enough for one-object-per-line traces without
   pulling in a JSON dependency.  Values are pre-rendered strings. *)

let str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let num v =
  if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let int i = string_of_int i

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"
