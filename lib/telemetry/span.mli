(** A finished span: one timed, named region of execution.

    Spans nest (the [depth] field); each records wall time and the metric
    deltas observed between entry and exit, so a trace shows both where
    time went and where cost units were booked. *)

type t = {
  name : string;
  attrs : (string * string) list;
  start : float;  (** seconds (collector clock; Unix epoch by default) *)
  duration : float;  (** seconds *)
  depth : int;  (** nesting depth at entry; 0 = top level *)
  seq : int;  (** creation order within the collector *)
  metrics : Metrics.snapshot;  (** metric deltas recorded while inside *)
}

val to_json : t -> string
(** One JSON object (no trailing newline). *)
