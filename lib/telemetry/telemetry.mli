(** Dependency-free observability: a process-global metrics registry,
    lightweight nesting spans, and pluggable trace sinks.

    The collector is off by default and everything here is a cheap no-op
    then — one [ref] dereference per call — so instrumented hot paths cost
    nothing in production runs.  Enabling installs a fresh registry:

    {[
      Telemetry.enable ~sinks:[ Telemetry.Sink.jsonl_file "out.jsonl" ] ();
      Telemetry.with_span ~name:"runner.action" (fun () -> ...);
      Telemetry.add ~labels:[ ("table", "0") ] "meter.seq_scanned" 42.0;
      let snap = Telemetry.snapshot () in
      Telemetry.disable ()          (* flushes and closes sinks *)
    ]}

    Spans record wall time, nesting depth and the metric deltas booked
    while inside; sinks receive each span as it finishes plus a final
    metrics snapshot at {!disable} time. *)

module Metrics = Metrics
module Span = Span
module Sink = Sink

val enable : ?sinks:Sink.t list -> unit -> unit
(** Install a fresh global collector (disabling any previous one first). *)

val disable : unit -> unit
(** Flush the final metrics snapshot to every sink, close them, and drop
    the collector.  No-op when already disabled. *)

val enabled : unit -> bool

val add_sink : Sink.t -> unit
(** Raises [Invalid_argument] when the collector is disabled. *)

val registry : unit -> Metrics.t option
val snapshot : unit -> Metrics.snapshot
(** Empty when disabled. *)

val set_clock : (unit -> float) -> unit
(** Override the wall clock (seconds); for deterministic tests.  Defaults
    to [Unix.gettimeofday]. *)

(** {1 Instruments} — no-ops when the collector is disabled. *)

val add : ?labels:(string * string) list -> string -> float -> unit
(** Counter increment (monotone; negative raises when enabled). *)

val incr : ?labels:(string * string) list -> string -> unit
(** [add name 1.0]. *)

val set_gauge : ?labels:(string * string) list -> string -> float -> unit

val max_gauge : ?labels:(string * string) list -> string -> float -> unit
(** Peak tracking: the gauge keeps the maximum value ever passed. *)

val observe :
  ?buckets:float array -> ?labels:(string * string) list -> string -> float ->
  unit
(** Histogram observation. *)

(** {1 Spans} *)

val with_span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span: wall time and the metric deltas
    booked inside are recorded and sent to every sink when it finishes
    (also on exception).  When the collector is disabled this is exactly
    [fn ()]. *)
