module Metrics = Metrics
module Span = Span
module Sink = Sink

type collector = {
  reg : Metrics.t;
  mutable sinks : Sink.t list;
  mutable depth : int;
  mutable seq : int;
}

let current : collector option ref = ref None
let enabled () = Option.is_some !current

let disable () =
  match !current with
  | None -> ()
  | Some c ->
      let snap = Metrics.snapshot c.reg in
      List.iter (fun (s : Sink.t) -> s.on_close snap) c.sinks;
      current := None

let enable ?(sinks = []) () =
  disable ();
  current := Some { reg = Metrics.create (); sinks; depth = 0; seq = 0 }

let add_sink sink =
  match !current with
  | None -> invalid_arg "Telemetry.add_sink: collector disabled"
  | Some c -> c.sinks <- c.sinks @ [ sink ]

let registry () = Option.map (fun c -> c.reg) !current

let snapshot () =
  match !current with None -> [] | Some c -> Metrics.snapshot c.reg

(* Wall clock; overridable for deterministic tests. *)
let clock = ref Unix.gettimeofday
let set_clock f = clock := f

(* --- no-op-when-disabled instrument helpers ------------------------------ *)

let add ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.inc (Metrics.counter c.reg ?labels name) v

let incr ?labels name = add ?labels name 1.0

let set_gauge ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.set (Metrics.gauge c.reg ?labels name) v

let max_gauge ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.set_max (Metrics.gauge c.reg ?labels name) v

let observe ?buckets ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.observe (Metrics.histogram c.reg ?buckets ?labels name) v

(* --- spans ---------------------------------------------------------------- *)

let with_span ?(attrs = []) ~name fn =
  match !current with
  | None -> fn ()
  | Some c ->
      (* Snapshot-diffing the registry costs O(#instruments); skip it when
         nothing consumes the span. *)
      let want_metrics = c.sinks <> [] in
      let before = if want_metrics then Metrics.snapshot c.reg else [] in
      let start = !clock () in
      let depth = c.depth in
      c.depth <- depth + 1;
      let seq = c.seq in
      c.seq <- seq + 1;
      let finish () =
        c.depth <- depth;
        let duration = !clock () -. start in
        if want_metrics || c.sinks <> [] then begin
          let metrics =
            if want_metrics then Metrics.diff (Metrics.snapshot c.reg) before
            else []
          in
          let span = { Span.name; attrs; start; duration; depth; seq; metrics } in
          List.iter (fun (s : Sink.t) -> s.on_span span) c.sinks
        end
      in
      Fun.protect ~finally:finish fn
