module Metrics = Metrics
module Span = Span
module Sink = Sink

(* The collector is shared by every domain (parallel search shards, the
   multiview flush pool), so its mutable pieces are domain-safe: the
   registry is internally sharded (see {!Metrics}), [depth]/[seq] are
   atomics, and the sink list — plus every sink notification, since sinks
   write to shared channels — is serialized by [sm].  [enable]/[disable]/
   [set_clock] remain main-domain operations: they swap whole collectors
   and are not meant to race with in-flight spans. *)
type collector = {
  reg : Metrics.t;
  sm : Mutex.t; (* guards [sinks] and serializes sink callbacks *)
  mutable sinks : Sink.t list;
  depth : int Atomic.t;
  seq : int Atomic.t;
}

let current : collector option ref = ref None
let enabled () = Option.is_some !current

let with_sinks c f =
  Mutex.lock c.sm;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.sm) (fun () -> f c.sinks)

let has_sinks c = with_sinks c (fun sinks -> sinks <> [])

let disable () =
  match !current with
  | None -> ()
  | Some c ->
      let snap = Metrics.snapshot c.reg in
      with_sinks c (List.iter (fun (s : Sink.t) -> s.on_close snap));
      current := None

let enable ?(sinks = []) () =
  disable ();
  current :=
    Some
      {
        reg = Metrics.create ();
        sm = Mutex.create ();
        sinks;
        depth = Atomic.make 0;
        seq = Atomic.make 0;
      }

let add_sink sink =
  match !current with
  | None -> invalid_arg "Telemetry.add_sink: collector disabled"
  | Some c ->
      Mutex.lock c.sm;
      c.sinks <- c.sinks @ [ sink ];
      Mutex.unlock c.sm

let registry () = Option.map (fun c -> c.reg) !current

let snapshot () =
  match !current with None -> [] | Some c -> Metrics.snapshot c.reg

(* Wall clock; overridable for deterministic tests. *)
let clock = ref Unix.gettimeofday
let set_clock f = clock := f

(* --- no-op-when-disabled instrument helpers ------------------------------ *)

let add ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.inc (Metrics.counter c.reg ?labels name) v

let incr ?labels name = add ?labels name 1.0

let set_gauge ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.set (Metrics.gauge c.reg ?labels name) v

let max_gauge ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.set_max (Metrics.gauge c.reg ?labels name) v

let observe ?buckets ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.observe (Metrics.histogram c.reg ?buckets ?labels name) v

(* --- spans ---------------------------------------------------------------- *)

let with_span ?(attrs = []) ~name fn =
  match !current with
  | None -> fn ()
  | Some c ->
      (* Snapshot-diffing the registry costs O(#instruments); skip it when
         nothing consumes the span.  With concurrent spans on other domains
         the diff attributes their updates to this span too — depth/seq stay
         globally consistent, attribution is per-process, not per-domain. *)
      let want_metrics = has_sinks c in
      let before = if want_metrics then Metrics.snapshot c.reg else [] in
      let start = !clock () in
      let depth = Atomic.fetch_and_add c.depth 1 in
      let seq = Atomic.fetch_and_add c.seq 1 in
      let finish () =
        Atomic.decr c.depth;
        let duration = !clock () -. start in
        let metrics =
          if want_metrics then Metrics.diff (Metrics.snapshot c.reg) before
          else []
        in
        let span = { Span.name; attrs; start; duration; depth; seq; metrics } in
        with_sinks c (fun sinks ->
            if sinks <> [] then
              List.iter (fun (s : Sink.t) -> s.on_span span) sinks)
      in
      Fun.protect ~finally:finish fn
