type t = {
  on_span : Span.t -> unit;
  on_close : Metrics.snapshot -> unit;
      (* called once with the final metrics snapshot when the collector is
         disabled *)
}

let make ?(on_close = fun _ -> ()) on_span = { on_span; on_close }

let jsonl_channel ?(close = false) oc =
  {
    on_span = (fun span -> output_string oc (Span.to_json span ^ "\n"));
    on_close =
      (fun snap ->
        output_string oc
          (Jsonx.obj
             [
               ("type", Jsonx.str "metrics");
               ("metrics", Metrics.snapshot_json snap);
             ]
          ^ "\n");
        if close then close_out oc else flush oc);
  }

let jsonl_file path = jsonl_channel ~close:true (open_out path)

let console_summary ?(oc = stdout) () =
  (* Aggregate spans by name; print a table when the collector shuts
     down. *)
  let agg : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  {
    on_span =
      (fun span ->
        let count, total, worst =
          match Hashtbl.find_opt agg span.Span.name with
          | Some cell -> cell
          | None ->
              let cell = (ref 0, ref 0.0, ref 0.0) in
              Hashtbl.replace agg span.Span.name cell;
              order := span.Span.name :: !order;
              cell
        in
        incr count;
        total := !total +. span.Span.duration;
        if span.Span.duration > !worst then worst := span.Span.duration);
    on_close =
      (fun _ ->
        if !order <> [] then begin
          output_string oc "\nspan summary:\n";
          output_string oc
            (Util.Tablefmt.render
               ~aligns:
                 [ Util.Tablefmt.Left; Util.Tablefmt.Right;
                   Util.Tablefmt.Right; Util.Tablefmt.Right ]
               ~header:[ "span"; "count"; "total s"; "max s" ]
               (List.rev_map
                  (fun name ->
                    let count, total, worst = Hashtbl.find agg name in
                    [
                      name;
                      string_of_int !count;
                      Printf.sprintf "%.4f" !total;
                      Printf.sprintf "%.4f" !worst;
                    ])
                  !order));
          flush oc
        end);
  }

let memory () =
  let spans = ref [] in
  ( { on_span = (fun span -> spans := span :: !spans); on_close = (fun _ -> ()) },
    fun () -> List.rev !spans )
