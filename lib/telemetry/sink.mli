(** Pluggable span consumers.

    A sink receives every finished span while the collector is enabled and
    a final metrics snapshot when it shuts down. *)

type t = {
  on_span : Span.t -> unit;
  on_close : Metrics.snapshot -> unit;
}

val make : ?on_close:(Metrics.snapshot -> unit) -> (Span.t -> unit) -> t

val jsonl_channel : ?close:bool -> out_channel -> t
(** One JSON object per line: every span as it finishes, then one final
    [{"type": "metrics", ...}] line with the full metrics snapshot.
    [close] (default false) closes the channel on shutdown. *)

val jsonl_file : string -> t
(** {!jsonl_channel} over a fresh file (truncating); closed on shutdown. *)

val console_summary : ?oc:out_channel -> unit -> t
(** Aggregates span wall time by name and prints a summary table (count,
    total, max) when the collector shuts down. *)

val memory : unit -> t * (unit -> Span.t list)
(** Collects spans in memory; the thunk returns them in creation order.
    For tests. *)
