type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* Instruments are domain-safe.  Counter and histogram state is sharded
   into [cell_shards] cells, each with its own tiny mutex; a domain writes
   the cell indexed by its id, so concurrent writers from different domains
   almost always touch different locks (a per-domain shard, not one hot
   mutex).  Snapshots merge the cells.  Gauges are written rarely and have
   last-write / running-max semantics that do not merge across shards, so
   they keep a single cell. *)

let cell_shards = 8

type cell = {
  cm : Mutex.t;
  mutable c_value : float; (* counter total, gauge value, histogram sum *)
  mutable c_count : int; (* histogram observations *)
  mutable c_min : float;
  mutable c_max : float;
  c_buckets : int array; (* length bounds + 1 (last = overflow); [||] else *)
}

type instrument = {
  name : string;
  labels : (string * string) list; (* sorted by key *)
  kind : kind;
  bounds : float array; (* histogram bucket upper bounds; [||] otherwise *)
  cells : cell array; (* [cell_shards] for counters/histograms, 1 for gauges *)
}

type counter = instrument
type gauge = instrument
type histogram = instrument

type t = { tbl : (string, instrument) Hashtbl.t; rm : Mutex.t }

let create () = { tbl = Hashtbl.create 64; rm = Mutex.create () }

let normalize_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Metrics: duplicate label key %S" a)
        else check rest
    | _ -> ()
  in
  check sorted;
  sorted

let labels_string labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let key name labels = name ^ labels_string labels

let default_buckets =
  [| 1.0; 2.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 2500.0;
     5000.0; 10000.0 |]

let make_cell ~kind ~bounds =
  {
    cm = Mutex.create ();
    c_value = 0.0;
    c_count = 0;
    c_min = Float.infinity;
    c_max = Float.neg_infinity;
    c_buckets =
      (if kind = Histogram then Array.make (Array.length bounds + 1) 0
       else [||]);
  }

let register reg ~kind ~bounds ?(labels = []) name =
  let labels = normalize_labels labels in
  let k = key name labels in
  Mutex.lock reg.rm;
  let inst =
    match Hashtbl.find_opt reg.tbl k with
    | Some existing ->
        if existing.kind <> kind then begin
          Mutex.unlock reg.rm;
          invalid_arg
            (Printf.sprintf
               "Metrics: %s already registered as a %s (cannot re-register \
                as a %s)"
               k (kind_name existing.kind) (kind_name kind))
        end;
        existing
    | None ->
        let n_cells = if kind = Gauge then 1 else cell_shards in
        let inst =
          {
            name;
            labels;
            kind;
            bounds;
            cells = Array.init n_cells (fun _ -> make_cell ~kind ~bounds);
          }
        in
        Hashtbl.replace reg.tbl k inst;
        inst
  in
  Mutex.unlock reg.rm;
  inst

let counter reg ?labels name = register reg ~kind:Counter ~bounds:[||] ?labels name
let gauge reg ?labels name = register reg ~kind:Gauge ~bounds:[||] ?labels name

let histogram reg ?(buckets = default_buckets) ?labels name =
  let bounds = Array.copy buckets in
  Array.sort compare bounds;
  register reg ~kind:Histogram ~bounds ?labels name

let my_cell inst =
  inst.cells.((Domain.self () :> int) land (Array.length inst.cells - 1))

let inc c v =
  if v < 0.0 then invalid_arg "Metrics.inc: counters are monotone (v < 0)";
  let cell = my_cell c in
  Mutex.lock cell.cm;
  cell.c_value <- cell.c_value +. v;
  Mutex.unlock cell.cm

let inc1 c = inc c 1.0

let set g v =
  let cell = g.cells.(0) in
  Mutex.lock cell.cm;
  cell.c_value <- v;
  Mutex.unlock cell.cm

let set_max g v =
  let cell = g.cells.(0) in
  Mutex.lock cell.cm;
  if v > cell.c_value then cell.c_value <- v;
  Mutex.unlock cell.cm

let observe h v =
  let cell = my_cell h in
  Mutex.lock cell.cm;
  cell.c_count <- cell.c_count + 1;
  cell.c_value <- cell.c_value +. v;
  if v < cell.c_min then cell.c_min <- v;
  if v > cell.c_max then cell.c_max <- v;
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  cell.c_buckets.(i) <- cell.c_buckets.(i) + 1;
  Mutex.unlock cell.cm

(* --- snapshots ----------------------------------------------------------- *)

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_kind : kind;
  sample_value : float;
  sample_count : int;
  sample_min : float; (* nan when no observations *)
  sample_max : float;
  sample_buckets : (float * int) list; (* (upper bound, count); inf = overflow *)
}

type snapshot = sample list

(* Merge an instrument's cells under their locks: sums for value/count and
   buckets, min-of-mins / max-of-maxs for extrema; a gauge has one cell so
   the "merge" is just a locked read. *)
let sample_of inst =
  let value = ref 0.0 and count = ref 0 in
  let min_v = ref Float.infinity and max_v = ref Float.neg_infinity in
  let buckets =
    if inst.kind = Histogram then Array.make (Array.length inst.bounds + 1) 0
    else [||]
  in
  Array.iter
    (fun cell ->
      Mutex.lock cell.cm;
      value := !value +. cell.c_value;
      count := !count + cell.c_count;
      if cell.c_min < !min_v then min_v := cell.c_min;
      if cell.c_max > !max_v then max_v := cell.c_max;
      Array.iteri (fun i c -> buckets.(i) <- buckets.(i) + c) cell.c_buckets;
      Mutex.unlock cell.cm)
    inst.cells;
  {
    sample_name = inst.name;
    sample_labels = inst.labels;
    sample_kind = inst.kind;
    sample_value = !value;
    sample_count = !count;
    sample_min = (if !count = 0 then Float.nan else !min_v);
    sample_max = (if !count = 0 then Float.nan else !max_v);
    sample_buckets =
      (if inst.kind <> Histogram then []
       else
         Array.to_list
           (Array.mapi
              (fun i c ->
                ( (if i < Array.length inst.bounds then inst.bounds.(i)
                   else Float.infinity),
                  c ))
              buckets));
  }

let compare_sample a b =
  match String.compare a.sample_name b.sample_name with
  | 0 -> compare a.sample_labels b.sample_labels
  | c -> c

let snapshot reg =
  Mutex.lock reg.rm;
  let insts = Hashtbl.fold (fun _ inst acc -> inst :: acc) reg.tbl [] in
  Mutex.unlock reg.rm;
  List.map sample_of insts |> List.sort compare_sample

(* [diff later earlier]: counters and histograms subtract; gauges keep the
   later value.  Samples whose delta is zero (or gauges that did not move)
   are dropped, so a diff reads as "what changed". *)
let diff later earlier =
  let find s =
    List.find_opt
      (fun e ->
        String.equal e.sample_name s.sample_name
        && e.sample_labels = s.sample_labels
        && e.sample_kind = s.sample_kind)
      earlier
  in
  List.filter_map
    (fun s ->
      match (s.sample_kind, find s) with
      | _, None ->
          if s.sample_kind = Gauge || s.sample_value <> 0.0 || s.sample_count <> 0
          then Some s
          else None
      | Counter, Some e ->
          let d = s.sample_value -. e.sample_value in
          if d = 0.0 then None else Some { s with sample_value = d }
      | Gauge, Some e ->
          if s.sample_value = e.sample_value then None else Some s
      | Histogram, Some e ->
          let dc = s.sample_count - e.sample_count in
          if dc = 0 then None
          else
            Some
              {
                s with
                sample_value = s.sample_value -. e.sample_value;
                sample_count = dc;
                sample_buckets =
                  List.map2
                    (fun (b, c) (_, c') -> (b, c - c'))
                    s.sample_buckets e.sample_buckets;
              })
    later

let find snap ?(labels = []) name =
  let labels = normalize_labels labels in
  List.find_opt
    (fun s -> String.equal s.sample_name name && s.sample_labels = labels)
    snap

let find_all snap name =
  List.filter (fun s -> String.equal s.sample_name name) snap

let value snap ?labels name =
  match find snap ?labels name with Some s -> s.sample_value | None -> 0.0

(* --- rendering ----------------------------------------------------------- *)

let to_rows snap =
  List.map
    (fun s ->
      [
        s.sample_name;
        labels_string s.sample_labels;
        kind_name s.sample_kind;
        (if Float.is_integer s.sample_value then
           Printf.sprintf "%.0f" s.sample_value
         else Printf.sprintf "%.2f" s.sample_value);
        (if s.sample_kind = Histogram then string_of_int s.sample_count else "");
      ])
    snap

let to_table snap =
  Util.Tablefmt.render
    ~aligns:
      [ Util.Tablefmt.Left; Util.Tablefmt.Left; Util.Tablefmt.Left;
        Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "metric"; "labels"; "kind"; "value"; "count" ]
    (to_rows snap)

let sample_json s =
  match s.sample_kind with
  | Counter | Gauge -> Jsonx.num s.sample_value
  | Histogram ->
      Jsonx.obj
        [
          ("count", Jsonx.int s.sample_count);
          ("sum", Jsonx.num s.sample_value);
          ("min", Jsonx.num s.sample_min);
          ("max", Jsonx.num s.sample_max);
        ]

let snapshot_json snap =
  Jsonx.obj
    (List.map
       (fun s -> (key s.sample_name s.sample_labels, sample_json s))
       snap)
