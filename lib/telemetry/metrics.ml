type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type instrument = {
  name : string;
  labels : (string * string) list; (* sorted by key *)
  kind : kind;
  mutable value : float; (* counter total, gauge value, histogram sum *)
  mutable count : int; (* histogram observations *)
  mutable min_v : float;
  mutable max_v : float;
  bounds : float array; (* histogram bucket upper bounds; [||] otherwise *)
  bucket_counts : int array; (* length bounds + 1 (last = overflow) *)
}

type counter = instrument
type gauge = instrument
type histogram = instrument

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let normalize_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Metrics: duplicate label key %S" a)
        else check rest
    | _ -> ()
  in
  check sorted;
  sorted

let labels_string labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let key name labels = name ^ labels_string labels

let default_buckets =
  [| 1.0; 2.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 2500.0;
     5000.0; 10000.0 |]

let register reg ~kind ~bounds ?(labels = []) name =
  let labels = normalize_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt reg.tbl k with
  | Some existing ->
      if existing.kind <> kind then
        invalid_arg
          (Printf.sprintf
             "Metrics: %s already registered as a %s (cannot re-register as \
              a %s)"
             k (kind_name existing.kind) (kind_name kind));
      existing
  | None ->
      let inst =
        {
          name;
          labels;
          kind;
          value = 0.0;
          count = 0;
          min_v = Float.infinity;
          max_v = Float.neg_infinity;
          bounds;
          bucket_counts =
            (if kind = Histogram then Array.make (Array.length bounds + 1) 0
             else [||]);
        }
      in
      Hashtbl.replace reg.tbl k inst;
      inst

let counter reg ?labels name = register reg ~kind:Counter ~bounds:[||] ?labels name
let gauge reg ?labels name = register reg ~kind:Gauge ~bounds:[||] ?labels name

let histogram reg ?(buckets = default_buckets) ?labels name =
  let bounds = Array.copy buckets in
  Array.sort compare bounds;
  register reg ~kind:Histogram ~bounds ?labels name

let inc c v =
  if v < 0.0 then invalid_arg "Metrics.inc: counters are monotone (v < 0)";
  c.value <- c.value +. v

let inc1 c = inc c 1.0
let set g v = g.value <- v
let set_max g v = if v > g.value then g.value <- v

let observe h v =
  h.count <- h.count + 1;
  h.value <- h.value +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.bucket_counts.(i) <- h.bucket_counts.(i) + 1

(* --- snapshots ----------------------------------------------------------- *)

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_kind : kind;
  sample_value : float;
  sample_count : int;
  sample_min : float; (* nan when no observations *)
  sample_max : float;
  sample_buckets : (float * int) list; (* (upper bound, count); inf = overflow *)
}

type snapshot = sample list

let sample_of inst =
  {
    sample_name = inst.name;
    sample_labels = inst.labels;
    sample_kind = inst.kind;
    sample_value = inst.value;
    sample_count = inst.count;
    sample_min = (if inst.count = 0 then Float.nan else inst.min_v);
    sample_max = (if inst.count = 0 then Float.nan else inst.max_v);
    sample_buckets =
      (if inst.kind <> Histogram then []
       else
         Array.to_list
           (Array.mapi
              (fun i c ->
                ( (if i < Array.length inst.bounds then inst.bounds.(i)
                   else Float.infinity),
                  c ))
              inst.bucket_counts));
  }

let compare_sample a b =
  match String.compare a.sample_name b.sample_name with
  | 0 -> compare a.sample_labels b.sample_labels
  | c -> c

let snapshot reg =
  Hashtbl.fold (fun _ inst acc -> sample_of inst :: acc) reg.tbl []
  |> List.sort compare_sample

(* [diff later earlier]: counters and histograms subtract; gauges keep the
   later value.  Samples whose delta is zero (or gauges that did not move)
   are dropped, so a diff reads as "what changed". *)
let diff later earlier =
  let find s =
    List.find_opt
      (fun e ->
        String.equal e.sample_name s.sample_name
        && e.sample_labels = s.sample_labels
        && e.sample_kind = s.sample_kind)
      earlier
  in
  List.filter_map
    (fun s ->
      match (s.sample_kind, find s) with
      | _, None ->
          if s.sample_kind = Gauge || s.sample_value <> 0.0 || s.sample_count <> 0
          then Some s
          else None
      | Counter, Some e ->
          let d = s.sample_value -. e.sample_value in
          if d = 0.0 then None else Some { s with sample_value = d }
      | Gauge, Some e ->
          if s.sample_value = e.sample_value then None else Some s
      | Histogram, Some e ->
          let dc = s.sample_count - e.sample_count in
          if dc = 0 then None
          else
            Some
              {
                s with
                sample_value = s.sample_value -. e.sample_value;
                sample_count = dc;
                sample_buckets =
                  List.map2
                    (fun (b, c) (_, c') -> (b, c - c'))
                    s.sample_buckets e.sample_buckets;
              })
    later

let find snap ?(labels = []) name =
  let labels = normalize_labels labels in
  List.find_opt
    (fun s -> String.equal s.sample_name name && s.sample_labels = labels)
    snap

let find_all snap name =
  List.filter (fun s -> String.equal s.sample_name name) snap

let value snap ?labels name =
  match find snap ?labels name with Some s -> s.sample_value | None -> 0.0

(* --- rendering ----------------------------------------------------------- *)

let to_rows snap =
  List.map
    (fun s ->
      [
        s.sample_name;
        labels_string s.sample_labels;
        kind_name s.sample_kind;
        (if Float.is_integer s.sample_value then
           Printf.sprintf "%.0f" s.sample_value
         else Printf.sprintf "%.2f" s.sample_value);
        (if s.sample_kind = Histogram then string_of_int s.sample_count else "");
      ])
    snap

let to_table snap =
  Util.Tablefmt.render
    ~aligns:
      [ Util.Tablefmt.Left; Util.Tablefmt.Left; Util.Tablefmt.Left;
        Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "metric"; "labels"; "kind"; "value"; "count" ]
    (to_rows snap)

let sample_json s =
  match s.sample_kind with
  | Counter | Gauge -> Jsonx.num s.sample_value
  | Histogram ->
      Jsonx.obj
        [
          ("count", Jsonx.int s.sample_count);
          ("sum", Jsonx.num s.sample_value);
          ("min", Jsonx.num s.sample_min);
          ("max", Jsonx.num s.sample_max);
        ]

let snapshot_json snap =
  Jsonx.obj
    (List.map
       (fun s -> (key s.sample_name s.sample_labels, sample_json s))
       snap)
