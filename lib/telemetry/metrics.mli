(** Metrics registry: named counters, gauges and histograms with label
    support.

    Instruments are identified by [(name, labels)]; registering the same
    identity twice returns the same instrument, and registering it with a
    different kind raises [Invalid_argument] (the "label collision" guard).
    The global registry lives in {!Telemetry}; layers that need always-on
    accounting can keep a private one.

    Registries and instruments are domain-safe: registration takes a short
    registry lock, and counter/histogram state is sharded into per-domain
    cells merged at {!snapshot} — concurrent writers from different domains
    do not contend on a single hot mutex, and no update is lost.  Gauges
    keep one cell (last-write/max semantics do not merge), so concurrent
    [set] is last-writer-wins. *)

type kind = Counter | Gauge | Histogram

val kind_name : kind -> string

type t
(** A registry. *)

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Find-or-create.  Labels are sorted internally; duplicate label keys
    raise [Invalid_argument]. *)

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?buckets:float array -> ?labels:(string * string) list -> string ->
  histogram
(** [buckets] are upper bounds (sorted internally; an overflow bucket is
    added).  Defaults to {!default_buckets}.  Buckets of an existing
    instrument are kept. *)

val default_buckets : float array

val inc : counter -> float -> unit
(** Counters are monotone: raises [Invalid_argument] on negative
    increments. *)

val inc1 : counter -> unit
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Peak tracking: keeps the maximum of all [set_max] values (gauges start
    at 0). *)

val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_kind : kind;
  sample_value : float;  (** counter total, gauge value, histogram sum *)
  sample_count : int;  (** histogram observations; 0 otherwise *)
  sample_min : float;  (** nan when no observations *)
  sample_max : float;
  sample_buckets : (float * int) list;
      (** (upper bound, count) per bucket; the last bound is [infinity] *)
}

type snapshot = sample list
(** Sorted by (name, labels). *)

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] — counters and histograms subtract; gauges keep
    the later value; unchanged samples are dropped, so a diff reads as
    "what changed in between". *)

val find : snapshot -> ?labels:(string * string) list -> string -> sample option
val find_all : snapshot -> string -> sample list

val value : snapshot -> ?labels:(string * string) list -> string -> float
(** 0.0 when absent. *)

val labels_string : (string * string) list -> string
(** ["{k=v,...}"], or [""] for no labels. *)

val to_rows : snapshot -> string list list
val to_table : snapshot -> string
(** Pretty table (via {!Util.Tablefmt}): metric, labels, kind, value,
    count. *)

val sample_json : sample -> string
val snapshot_json : snapshot -> string
(** One JSON object mapping ["name{k=v}"] to a number (counter/gauge) or a
    [{count, sum, min, max}] object (histogram). *)
