type t = {
  name : string;
  attrs : (string * string) list;
  start : float; (* seconds, collector clock (Unix epoch by default) *)
  duration : float; (* seconds *)
  depth : int; (* nesting depth at entry; 0 = top level *)
  seq : int; (* creation order within the collector *)
  metrics : Metrics.snapshot; (* metric deltas recorded while inside *)
}

let to_json span =
  Jsonx.obj
    [
      ("type", Jsonx.str "span");
      ("name", Jsonx.str span.name);
      ("seq", Jsonx.int span.seq);
      ("depth", Jsonx.int span.depth);
      ("start_s", Jsonx.num span.start);
      ("dur_s", Jsonx.num span.duration);
      ( "attrs",
        Jsonx.obj (List.map (fun (k, v) -> (k, Jsonx.str v)) span.attrs) );
      ("metrics", Metrics.snapshot_json span.metrics);
    ]
