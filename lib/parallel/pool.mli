(** A dependency-free domain pool (stdlib [Domain] + [Mutex]/[Condition]).

    The pool owns [domains - 1] worker domains; the calling domain is the
    remaining worker, so [create ~domains:1] spawns nothing and every
    operation degenerates to plain sequential execution — bit-identical to
    not using a pool at all.

    Batches are synchronous: {!run} and {!map} return only once every task
    of the batch has finished.  The first exception raised by any task is
    re-raised in the caller (with its backtrace) after the batch drains;
    remaining tasks still run.  Submitting from two domains at once is not
    supported — a pool has exactly one submitting domain at a time. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts a pool of [max 1 domains] workers
    (including the caller).  Default: [Domain.recommended_domain_count ()]. *)

val domains : t -> int
(** Worker count, caller included.  At least 1. *)

val run : t -> (unit -> unit) list -> unit
(** Execute the tasks to completion, the caller participating.  Tasks may
    block on each other (e.g. cooperating search shards exchanging
    messages), therefore the batch MUST NOT contain more tasks than
    [domains t] — excess tasks would have no domain to run on and the
    batch could deadlock.  Raises [Invalid_argument] in that case. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map].  Tasks must be independent (never block on one
    another); any number of them is fine — excess tasks queue.  Order of
    side effects is unspecified, results are in input order. *)

type job
(** A detached single task running in the background.  Unlike {!run} /
    {!map} batches, the submitter does not wait: it keeps working and
    later {!poll}s or {!await}s the job.  Used to move checkpoint
    serialization off the maintenance thread. *)

val detach : t -> (unit -> unit) -> job
(** Submit one background task.  With [domains t = 1] there are no worker
    domains, so the task runs inline before [detach] returns and the job
    is already settled — the sequential degenerate case stays
    bit-identical.  The task must terminate without depending on further
    pool progress.  Raises [Invalid_argument] after {!shutdown}. *)

val poll : job -> [ `Running | `Done | `Failed ]
(** Non-blocking completion check. *)

val await : job -> unit
(** Block until the job finishes, helping to drain the queue meanwhile.
    Re-raises the job's exception (with backtrace) if it failed.  Safe to
    call more than once; later calls return (or re-raise) immediately. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Using the pool afterwards
    raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run the function, always [shutdown]. *)
