type task = unit -> unit

type t = {
  domains : int;
  m : Mutex.t;
  work : Condition.t;  (* signalled when the queue gains tasks / on close *)
  idle : Condition.t;  (* signalled when [pending] drops to zero *)
  queue : task Queue.t;
  mutable pending : int;  (* tasks submitted but not yet finished *)
  mutable closing : bool;
  mutable first_exn : (exn * Printexc.raw_backtrace) option;
  mutable workers : unit Domain.t list;
}

let domains t = t.domains

(* Run one task outside the lock, recording the first failure and the
   batch-completion signal under it. *)
let run_task t task =
  let failure =
    try
      task ();
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.m;
  (match failure with
  | Some _ when t.first_exn = None -> t.first_exn <- failure
  | _ -> ());
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.m

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.work t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* closing *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.m;
    run_task t task;
    worker_loop t
  end

let create ?domains () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      domains;
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      closing = false;
      first_exn = None;
      workers = [];
    }
  in
  t.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

(* Submit a batch and participate until it fully drains. *)
let exec t tasks =
  match tasks with
  | [] -> ()
  | tasks ->
      Mutex.lock t.m;
      if t.closing then begin
        Mutex.unlock t.m;
        invalid_arg "Pool: pool is shut down"
      end;
      List.iter (fun task -> Queue.push task t.queue) tasks;
      t.pending <- t.pending + List.length tasks;
      Condition.broadcast t.work;
      let rec drain () =
        if not (Queue.is_empty t.queue) then begin
          let task = Queue.pop t.queue in
          Mutex.unlock t.m;
          run_task t task;
          Mutex.lock t.m;
          drain ()
        end
      in
      drain ();
      while t.pending > 0 do
        Condition.wait t.idle t.m
      done;
      let failure = t.first_exn in
      t.first_exn <- None;
      Mutex.unlock t.m;
      (match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())

let run t tasks =
  if List.length tasks > t.domains then
    invalid_arg "Pool.run: more cooperating tasks than domains";
  exec t tasks

let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    exec t
      (List.init n (fun i -> fun () -> results.(i) <- Some (f arr.(i))));
    Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  Mutex.lock t.m;
  let workers = t.workers in
  t.workers <- [];
  if not t.closing then begin
    t.closing <- true;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.m;
  List.iter Domain.join workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
