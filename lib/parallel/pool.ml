type task = unit -> unit

(* Every submitted task belongs to a batch; the batch tracks how many of
   its tasks are still outstanding and the first failure among them.  A
   synchronous [exec] is a batch the caller waits on; a [detach]ed job is
   a single-task batch nobody waits on until [await]. *)
type batch = {
  mutable remaining : int;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  finished : Condition.t;  (* signalled when [remaining] drops to zero *)
}

type t = {
  domains : int;
  m : Mutex.t;
  work : Condition.t;  (* signalled when the queue gains tasks / on close *)
  queue : (batch * task) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

type job = { owner : t; b : batch }

let domains t = t.domains

let new_batch n = { remaining = n; failure = None; finished = Condition.create () }

(* Run one task outside the lock, recording the first failure and the
   batch-completion signal under it. *)
let run_item t (b, task) =
  let failure =
    try
      task ();
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.m;
  (match failure with
  | Some _ when b.failure = None -> b.failure <- failure
  | _ -> ());
  b.remaining <- b.remaining - 1;
  if b.remaining = 0 then Condition.broadcast b.finished;
  Mutex.unlock t.m

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.work t.m
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.m (* closing *)
  else begin
    let item = Queue.pop t.queue in
    Mutex.unlock t.m;
    run_item t item;
    worker_loop t
  end

let create ?domains () =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      domains;
      m = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

(* With the lock held: help run queued items until [b] completes or the
   queue is empty, then wait on the batch condition.  Items from other
   batches may be picked up along the way — they always terminate on
   their own, so this only reorders work, never blocks progress. *)
let wait_batch t b =
  let rec drain () =
    if b.remaining > 0 && not (Queue.is_empty t.queue) then begin
      let item = Queue.pop t.queue in
      Mutex.unlock t.m;
      run_item t item;
      Mutex.lock t.m;
      drain ()
    end
  in
  drain ();
  while b.remaining > 0 do
    Condition.wait b.finished t.m
  done;
  let failure = b.failure in
  Mutex.unlock t.m;
  match failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* Submit a batch and participate until it fully drains. *)
let exec t tasks =
  match tasks with
  | [] -> ()
  | tasks ->
      let b = new_batch (List.length tasks) in
      Mutex.lock t.m;
      if t.closing then begin
        Mutex.unlock t.m;
        invalid_arg "Pool: pool is shut down"
      end;
      List.iter (fun task -> Queue.push (b, task) t.queue) tasks;
      Condition.broadcast t.work;
      wait_batch t b

let run t tasks =
  if List.length tasks > t.domains then
    invalid_arg "Pool.run: more cooperating tasks than domains";
  exec t tasks

let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    exec t
      (List.init n (fun i -> fun () -> results.(i) <- Some (f arr.(i))));
    Array.map (function Some v -> v | None -> assert false) results
  end

let detach t task =
  let b = new_batch 1 in
  if t.domains = 1 then
    (* No workers to hand the task to: run it here, synchronously.  The
       job is already settled when it is returned — bit-identical to the
       pre-pool sequential path. *)
    run_item t (b, task)
  else begin
    Mutex.lock t.m;
    if t.closing then begin
      Mutex.unlock t.m;
      invalid_arg "Pool: pool is shut down"
    end;
    Queue.push (b, task) t.queue;
    Condition.signal t.work;
    Mutex.unlock t.m
  end;
  { owner = t; b }

let poll job =
  let t = job.owner in
  Mutex.lock t.m;
  let state =
    if job.b.remaining > 0 then `Running
    else match job.b.failure with None -> `Done | Some _ -> `Failed
  in
  Mutex.unlock t.m;
  state

let await job =
  let t = job.owner in
  Mutex.lock t.m;
  wait_batch t job.b

let shutdown t =
  Mutex.lock t.m;
  let workers = t.workers in
  t.workers <- [];
  if not t.closing then begin
    t.closing <- true;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.m;
  List.iter Domain.join workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
