(** Drift detection: is the planner's model still describing the world?

    The monitor tracks two EWMA error signals against the model the
    current plan was computed from:

    - {b arrival drift}: per-step relative error between observed arrival
      vectors and the predicted per-table rates (the planner's projection,
      e.g. the mean rates of the ADAPT [T_0] instance or an
      [Online.controller]'s EWMA estimates);
    - {b cost drift}: per-action relative error between the observed cost
      of an executed action and the model's prediction for it.  In
      simulation the observation is the actual spec's [f]; in executed
      mode it is the engine's metered cost units
      ([Bridge.Runner.run_plan ~monitor] feeds them in).

    The drift score is the max of the two signals.  Tripping has
    hysteresis: the detector arms above [trip], and only re-arms after
    the score falls below [clear < trip], so a score hovering at the
    threshold cannot re-trigger replanning every step.

    Alongside the error signals the monitor maintains EWMA estimates of
    the observed rates and of the observed/expected cost ratio — exactly
    the corrections a replanner needs to rebuild its model
    ({!Replan.run} uses both). *)

type config = {
  alpha : float;  (** EWMA smoothing for all signals, in (0, 1] *)
  trip : float;  (** score above this trips the detector *)
  clear : float;  (** score below this re-arms it (must be < [trip]) *)
}

val default_config : config
(** [alpha = 0.1], [trip = 0.5], [clear = 0.2]. *)

type t

val create : ?config:config -> predicted_rates:float array -> unit -> t
(** A fresh monitor; [predicted_rates] are the per-table arrival rates
    the current plan assumed. *)

val observe_arrivals : t -> int array -> unit
(** Record one step's observed arrival vector. *)

val observe_cost : t -> expected:float -> observed:float -> unit
(** Record one executed action: the model predicted [expected], the
    world charged [observed].  Ignored when [expected <= 0]. *)

val score : t -> float
(** Current drift score (max of arrival and cost signals). *)

val tripped : t -> bool
(** True from the step the score exceeds [trip] until it falls back
    below [clear]. *)

val rates : t -> float array
(** EWMA estimate of the observed per-table arrival rates. *)

val cost_ratio : t -> float
(** EWMA estimate of observed/expected action cost (1.0 until the first
    observation) — multiply the model's cost functions by this to
    re-anchor them. *)

val rebase : t -> unit
(** Adopt the current observed rates as the new predictions, reset the
    cost ratio to 1 (the caller is expected to have folded it into its
    model), zero both error signals, and re-arm the detector — call
    after replanning, when the new plan embodies the corrections. *)

val observations : t -> int
(** Steps observed so far (arrival observations). *)
