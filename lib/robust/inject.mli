(** Fault injection: first-class, seed-reproducible perturbations of a
    problem instance.

    A robustness experiment needs two views of the same world: the
    {e model} the planner believes (calibrated cost functions, projected
    arrivals) and the {e actual} world it runs in (drifted rates, costs
    the calibration no longer matches).  {!scenario} packages the pair;
    the combinators below build the actual side from the model by
    composing named perturbations.

    Arrival perturbations act on the dense matrix
    ([d.(t).(i)] as produced by [Workload.Arrivals.generate]) so any
    generator output — or a recorded trace — can be degraded.  Cost
    perturbations act on [Cost.Func.t].  Everything is deterministic in
    the explicit seeds. *)

(** {1 Arrival perturbations} *)

val rate_shift :
  ?tables:int list -> at:int -> factor:float -> int array array -> int array array
(** From step [at] on, scale arrivals by [factor >= 0] (rounded to the
    nearest count).  [tables] restricts the shift to the given columns
    (default: all).  Rows before [at] are returned unchanged (shared). *)

val blackout : from:int -> len:int -> int array array -> int array array
(** Zero all arrivals in the window [\[from, from + len)] — an upstream
    outage.  The backlog does not reappear afterwards. *)

val burst :
  ?tables:int list -> at:int -> extra:int -> len:int -> int array array ->
  int array array
(** Add [extra] modifications per step to the given tables (default all)
    during [\[at, at + len)] — a flash crowd. *)

val table_swap : at:int -> int -> int -> int array array -> int array array
(** From step [at] on, swap the arrival columns of the two tables — load
    migrates to a table with a different cost profile (the worst kind of
    drift for an asymmetry-exploiting plan). *)

(** {1 Cost perturbations}

    These model the {e true} execution cost diverging from the calibrated
    model the planner uses; apply them to the actual side of a scenario. *)

val cost_scale : float -> Cost.Func.t array -> Cost.Func.t array
(** Uniform misestimation: every true cost is [factor] times the model. *)

val cost_noise : seed:int -> amp:float -> Cost.Func.t array -> Cost.Func.t array
(** Per-batch-size multiplicative noise via {!Cost.Func.jitter}; each
    table gets an independent noise stream split from [seed]. *)

val cost_stale : rate:float -> Cost.Func.t array -> Cost.Func.t array
(** Stale-calibration drift: true cost [f k * (1 + rate * log (1 + k))] —
    error grows with batch size, as when a table kept growing after the
    cost curve was measured.  [rate >= 0]. *)

(** {1 Scenarios} *)

type scenario = {
  label : string;
  model : Abivm.Spec.t;  (** what the planner calibrated and projected *)
  actual : Abivm.Spec.t;
      (** the world the executor runs in: true arrivals, true costs,
          same constraint [C] *)
}

val scenario :
  ?label:string ->
  model:Abivm.Spec.t ->
  arrivals:(int array array -> int array array) ->
  costs:(Cost.Func.t array -> Cost.Func.t array) ->
  unit ->
  scenario
(** Build the actual side by perturbing the model's arrivals and costs;
    the response-time limit [C] is shared (it is the contract, not an
    estimate).  Use [Fun.id] for an unperturbed dimension. *)

val drifted :
  ?label:string ->
  ?shift_at:int ->
  ?rate_factor:float ->
  ?cost_factor:float ->
  Abivm.Spec.t ->
  scenario
(** The canonical degraded scenario of the bench and tests: a rate shift
    at [shift_at] (default mid-horizon) by [rate_factor] (default [2.0])
    plus uniform cost misestimation by [cost_factor] (default [2.0]). *)
