(** Closing the loop: drift-triggered replanning over an ADAPT replay.

    The paper's ADAPT (§4.2) computes one plan on a [T_0]-step model
    instance and replays its schedule cyclically, forever trusting the
    calibration.  {!run} executes the same replay against the {e actual}
    world of an {!Inject.scenario} but keeps a {!Monitor} watching the
    arrivals and the realized action costs.  When the drift score trips:

    + the cumulative cost correction absorbs the monitor's
      observed/expected ratio, and the model's cost functions are
      re-anchored by that factor;
    + a fresh instance is built over the remaining horizon — row 0 is the
      current pending state plus one step at the monitor's EWMA rates,
      later rows are pure rate projections;
    + A* solves it and the replay switches from the cyclic [T_0] schedule
      to the new plan's absolute-time schedule;
    + the monitor {!Monitor.rebase}s and the next replan is pushed out by
      an exponentially backed-off gap, so a persistently noisy world
      cannot thrash the planner.

    Unlike {!Abivm.Adapt.replay}'s slot-keyed replay, the schedule is
    executed {e lazily}: each planned action waits until the state is
    actually full (on the actual spec — the contract binds in the real
    world), then flushes its planned {e subset} of whatever is really
    pending.  Lemma 1 says delaying to the next full time never increases
    cost, so the plan's timing projections cost nothing when the world
    runs slow, and merge into the final refresh for free when fullness
    never returns.  Whenever the planned subset (or an empty schedule)
    leaves the post-action state still full, the executor degrades to a
    rescue flush of everything and counts it.  The returned plan is
    therefore always valid for the actual spec.

    Telemetry: books [robust.replans] and [robust.rescues] counters; the
    monitor maintains the [robust.drift_score] / [robust.drift_peak]
    gauges. *)

type config = {
  monitor : Monitor.config;
  min_gap : int;  (** steps between consecutive replans, initially (>= 1) *)
  backoff : float;  (** gap multiplier after each replan (>= 1) *)
}

val default_config : config
(** [Monitor.default_config], [min_gap = 2], [backoff = 2.0]. *)

type result = {
  plan : Abivm.Plan.t;  (** the executed actions — valid on the actual spec *)
  cost : float;  (** [Plan.cost actual plan] *)
  rescues : int;
  replans : int;
  drift_peak : float;  (** highest drift score seen during the run *)
}

val reanchor :
  monitor:Monitor.t ->
  corr:float ->
  Cost.Func.t array ->
  Cost.Func.t array * float
(** The model-correction step of a replan, on its own: fold the
    monitor's realized/expected cost ratio (floored at [1e-6]) into the
    cumulative correction [corr], scale the given cost functions by the
    new correction, and {!Monitor.rebase} so the corrected model becomes
    the baseline further drift is judged against.  Returns the scaled
    costs and the new correction.  {!run} applies exactly this on every
    trip; a live controller ([abivm serve]) feeds the result to
    [Online.set_costs] instead of re-solving with A*. *)

val mean_rates : Abivm.Spec.t -> float array
(** Per-table mean arrivals per step over the whole horizon — the rate
    vector a planner implicitly assumes, and the monitor's initial
    prediction. *)

val static_adapt :
  model:Abivm.Spec.t -> actual:Abivm.Spec.t -> t0:int -> Abivm.Adapt.result
(** The no-feedback baseline: solve the [t0] instance of the {e model},
    replay its cyclic schedule on the {e actual} world.  Exactly ADAPT
    under drift — rescues counted, never replans. *)

val run :
  ?config:config ->
  model:Abivm.Spec.t ->
  actual:Abivm.Spec.t ->
  t0:int ->
  unit ->
  result
(** Run the monitored replay described above.  [model] and [actual] must
    agree on table count and horizon (an {!Inject.scenario} guarantees
    this); raises [Invalid_argument] otherwise. *)
