open Abivm

type config = {
  monitor : Monitor.config;
  min_gap : int;
  backoff : float;
}

let default_config =
  { monitor = Monitor.default_config; min_gap = 2; backoff = 2.0 }

type result = {
  plan : Plan.t;
  cost : float;
  rescues : int;
  replans : int;
  drift_peak : float;
}

(* The schedule is kept as an ordered queue of planned subset-flushes and
   executed {e lazily}: each action waits until the state is actually full
   (Lemma 1 — delaying an action to the next full time never increases
   cost), so projection error in the plan's timing costs nothing.  A
   cyclic ADAPT schedule is unrolled to absolute times up front. *)
let unroll_cyclic sched ~horizon =
  let out = ref [] in
  for t = horizon - 1 downto 0 do
    match Adapt.scheduled_subset sched t with
    | Some subset -> out := (t, subset) :: !out
    | None -> ()
  done;
  !out

let mean_rates spec =
  let n = Spec.n_tables spec in
  let d = Spec.arrivals spec in
  let acc = Array.make n 0.0 in
  Array.iter
    (fun row -> Array.iteri (fun i c -> acc.(i) <- acc.(i) +. float_of_int c) row)
    d;
  Array.map (fun s -> s /. float_of_int (Array.length d)) acc

(* The model-correction half of a replan, shared with live controllers
   ([abivm serve]): fold the monitor's realized/expected cost ratio into
   the cumulative correction, scale the model's cost functions by it, and
   rebase the monitor so the corrected model is the new baseline. *)
let reanchor ~monitor ~corr costs =
  let corr = corr *. Float.max 1e-6 (Monitor.cost_ratio monitor) in
  let costs = Array.map (Cost.Func.scale corr) costs in
  Monitor.rebase monitor;
  (costs, corr)

let static_adapt ~model ~actual ~t0 =
  let t0_plan = (Astar.solve (Adapt.projected model ~t0)).Astar.plan in
  Adapt.replay actual ~t0 ~t0_plan

let run ?(config = default_config) ~model ~actual ~t0 () =
  if Spec.n_tables model <> Spec.n_tables actual then
    invalid_arg "Replan.run: model/actual table count mismatch";
  if Spec.horizon model <> Spec.horizon actual then
    invalid_arg "Replan.run: model/actual horizon mismatch";
  if config.min_gap < 1 then invalid_arg "Replan.run: min_gap must be >= 1";
  if config.backoff < 1.0 then invalid_arg "Replan.run: backoff must be >= 1";
  let n = Spec.n_tables actual in
  let horizon = Spec.horizon actual in
  let t0_plan = (Astar.solve (Adapt.projected model ~t0)).Astar.plan in
  let upcoming = ref (unroll_cyclic (Adapt.schedule ~t0 ~t0_plan) ~horizon) in
  let monitor =
    Monitor.create ~config:config.monitor ~predicted_rates:(mean_rates model) ()
  in
  (* Cumulative cost correction: the product of every cost ratio folded in
     at replan time.  [corr *. Spec.f model a] is the current corrected
     model's prediction for action [a]. *)
  let corr = ref 1.0 in
  let gap = ref config.min_gap in
  let next_allowed = ref 0 in
  let state = ref (Statevec.zero n) in
  let out = ref [] in
  let rescues = ref 0 and replans = ref 0 in
  let drift_peak = ref 0.0 in
  let rescue pre =
    incr rescues;
    Telemetry.incr "robust.rescues";
    pre
  in
  for t = 0 to horizon do
    let d = (Spec.arrivals actual).(t) in
    Monitor.observe_arrivals monitor d;
    let pre = Statevec.add !state d in
    let action =
      if t = horizon then pre
        (* Fullness is judged on the actual spec: the response-time
           contract binds in the real world, not in the model.  A non-full
           state defers the next planned action (lazy execution); a full
           one consumes it, or degrades to a rescue flush when the plan
           has nothing (left) that restores the constraint. *)
      else if not (Spec.is_full actual pre) then Statevec.zero n
      else begin
        match !upcoming with
        | (_, subset) :: rest ->
            upcoming := rest;
            let a = Statevec.restrict_to pre subset in
            if Spec.is_full actual (Statevec.sub pre a) then rescue pre else a
        | [] -> rescue pre
      end
    in
    if not (Statevec.is_zero action) then begin
      Monitor.observe_cost monitor
        ~expected:(!corr *. Spec.f model action)
        ~observed:(Spec.f actual action);
      out := (t, action) :: !out
    end;
    state := Statevec.sub pre action;
    drift_peak := Float.max !drift_peak (Monitor.score monitor);
    if t < horizon && t >= !next_allowed && Monitor.tripped monitor then begin
      (* Rebuild the instance over [t+1, horizon] from what the monitor
         learned, re-solve, and switch to the new schedule. *)
      let costs, corr' = reanchor ~monitor ~corr:!corr (Spec.costs model) in
      corr := corr';
      let rates = Monitor.rates monitor in
      (* Project fractional EWMA rates by accumulation — row r carries
         floor((r+1)·rate) − floor(r·rate) — so a 0.7/step table gets 7
         arrivals per 10 steps, not 10 (per-step rounding would).  Row 0
         additionally carries the real pending state forward. *)
      let at_rate i r = int_of_float (float_of_int r *. rates.(i)) in
      let arrivals =
        Array.init (horizon - t) (fun r ->
            Array.init n (fun i ->
                let per_step = at_rate i (r + 1) - at_rate i r in
                if r = 0 then !state.(i) + per_step else per_step))
      in
      let spec' = Spec.make ~costs ~limit:(Spec.limit actual) ~arrivals in
      let plan' = (Astar.solve spec').Astar.plan in
      upcoming :=
        List.filter_map
          (fun (pt, a) ->
            let at = t + 1 + pt in
            (* The new plan's own horizon action coincides with the
               replay's unconditional final flush; scheduling it would be
               redundant. *)
            if at < horizon then Some (at, Statevec.support a) else None)
          (Plan.actions plan');
      incr replans;
      Telemetry.incr "robust.replans";
      next_allowed := t + !gap;
      gap := int_of_float (Float.round (config.backoff *. float_of_int !gap))
    end
  done;
  let plan = Plan.of_actions (List.rev !out) in
  {
    plan;
    cost = Plan.cost actual plan;
    rescues = !rescues;
    replans = !replans;
    drift_peak = !drift_peak;
  }
