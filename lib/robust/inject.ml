let in_tables tables i =
  match tables with None -> true | Some l -> List.mem i l

let rate_shift ?tables ~at ~factor d =
  if factor < 0.0 then invalid_arg "Inject.rate_shift: negative factor";
  Array.mapi
    (fun t row ->
      if t < at then row
      else
        Array.mapi
          (fun i c ->
            if in_tables tables i then
              int_of_float (Float.round (factor *. float_of_int c))
            else c)
          row)
    d

let blackout ~from ~len d =
  if len < 0 then invalid_arg "Inject.blackout: negative length";
  Array.mapi
    (fun t row ->
      if t >= from && t < from + len then Array.make (Array.length row) 0
      else row)
    d

let burst ?tables ~at ~extra ~len d =
  if extra < 0 then invalid_arg "Inject.burst: negative extra";
  if len < 0 then invalid_arg "Inject.burst: negative length";
  Array.mapi
    (fun t row ->
      if t >= at && t < at + len then
        Array.mapi (fun i c -> if in_tables tables i then c + extra else c) row
      else row)
    d

let table_swap ~at i j d =
  Array.mapi
    (fun t row ->
      if t < at then row
      else begin
        let row = Array.copy row in
        let tmp = row.(i) in
        row.(i) <- row.(j);
        row.(j) <- tmp;
        row
      end)
    d

let cost_scale factor costs = Array.map (Cost.Func.scale factor) costs

let cost_noise ~seed ~amp costs =
  let root = Util.Prng.create ~seed in
  Array.map
    (fun f ->
      let table_seed = Int64.to_int (Util.Prng.bits64 root) land max_int in
      Cost.Func.jitter ~seed:table_seed ~amp f)
    costs

let cost_stale ~rate costs =
  if rate < 0.0 then invalid_arg "Inject.cost_stale: negative rate";
  Array.map
    (fun f ->
      Cost.Func.of_fn
        ~name:(Printf.sprintf "stale(%g,%s)" rate (Cost.Func.name f))
        (fun k ->
          Cost.Func.eval f k *. (1.0 +. (rate *. log (1.0 +. float_of_int k)))))
    costs

type scenario = {
  label : string;
  model : Abivm.Spec.t;
  actual : Abivm.Spec.t;
}

let scenario ?(label = "scenario") ~model ~arrivals ~costs () =
  let actual =
    Abivm.Spec.make
      ~costs:(costs (Abivm.Spec.costs model))
      ~limit:(Abivm.Spec.limit model)
      ~arrivals:(arrivals (Abivm.Spec.arrivals model))
  in
  { label; model; actual }

let drifted ?label ?shift_at ?(rate_factor = 2.0) ?(cost_factor = 2.0) model =
  let at =
    match shift_at with
    | Some t -> t
    | None -> (Abivm.Spec.horizon model / 2) + 1
  in
  let label =
    match label with
    | Some l -> l
    | None ->
        Printf.sprintf "drift(shift@%d x%g, cost x%g)" at rate_factor
          cost_factor
  in
  scenario ~label ~model
    ~arrivals:(rate_shift ~at ~factor:rate_factor)
    ~costs:(cost_scale cost_factor) ()
