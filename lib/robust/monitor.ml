type config = { alpha : float; trip : float; clear : float }

let default_config = { alpha = 0.1; trip = 0.5; clear = 0.2 }

type t = {
  config : config;
  predicted : float array;  (* rates the current plan assumed *)
  observed : float array;  (* EWMA of observed arrivals *)
  mutable arr_err : float;  (* EWMA relative arrival error *)
  mutable cost_err : float;  (* EWMA relative cost error *)
  mutable ratio : float;  (* EWMA observed/expected cost *)
  mutable steps : int;
  mutable armed : bool;  (* hysteresis state: false once tripped *)
}

let create ?(config = default_config) ~predicted_rates () =
  if config.alpha <= 0.0 || config.alpha > 1.0 then
    invalid_arg "Monitor.create: alpha must be in (0, 1]";
  if config.clear >= config.trip then
    invalid_arg "Monitor.create: need clear < trip";
  {
    config;
    predicted = Array.copy predicted_rates;
    observed = Array.copy predicted_rates;
    arr_err = 0.0;
    cost_err = 0.0;
    ratio = 1.0;
    steps = 0;
    armed = true;
  }

let ewma alpha old x = ((1.0 -. alpha) *. old) +. (alpha *. x)

let score m = Float.max m.arr_err m.cost_err

(* Update the hysteresis state after any signal change; booking the gauge
   here keeps every observation path covered. *)
let refresh m =
  let s = score m in
  if m.armed then begin
    if s > m.config.trip then m.armed <- false
  end
  else if s < m.config.clear then m.armed <- true;
  Telemetry.set_gauge "robust.drift_score" s;
  Telemetry.max_gauge "robust.drift_peak" s

let observe_arrivals m d =
  if Array.length d <> Array.length m.predicted then
    invalid_arg "Monitor.observe_arrivals: width mismatch";
  let alpha = m.config.alpha in
  let abs_err = ref 0.0 and pred_total = ref 0.0 in
  Array.iteri
    (fun i di ->
      let x = float_of_int di in
      m.observed.(i) <- ewma alpha m.observed.(i) x;
      abs_err := !abs_err +. Float.abs (x -. m.predicted.(i));
      pred_total := !pred_total +. m.predicted.(i))
    d;
  (* Normalizing by 1 + predicted volume keeps the signal scale-free: a
     one-modification surprise on a quiet stream matters, the same
     surprise on a 100/step stream does not. *)
  m.arr_err <- ewma alpha m.arr_err (!abs_err /. (1.0 +. !pred_total));
  m.steps <- m.steps + 1;
  refresh m

let observe_cost m ~expected ~observed =
  if expected > 0.0 then begin
    let alpha = m.config.alpha in
    let r = observed /. expected in
    m.ratio <- ewma alpha m.ratio r;
    m.cost_err <- ewma alpha m.cost_err (Float.abs (r -. 1.0));
    refresh m
  end

let tripped m = not m.armed

let rates m = Array.copy m.observed

let cost_ratio m = m.ratio

let rebase m =
  Array.blit m.observed 0 m.predicted 0 (Array.length m.predicted);
  m.ratio <- 1.0;
  m.arr_err <- 0.0;
  m.cost_err <- 0.0;
  m.armed <- true;
  refresh m

let observations m = m.steps
