(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index), plus this repo's
   own ablations and bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe            -- run every section
     dune exec bench/main.exe -- fig6    -- run one section
   Sections: fig1 intro fig4 fig5 fig6 fig7 tightness ablation opflow
   conjectures multiview multiview-par multiview-par-smoke astar
   astar-smoke robust robust-smoke durable durable-smoke columnar
   columnar-smoke serve serve-smoke serve-io serve-io-smoke ho ho-smoke
   micro
   Flags: --csv DIR (also write tables as CSV), --trace FILE.jsonl
   (telemetry trace), --metrics (print the metrics table at the end),
   --domains 1,2,4 (domain counts swept by the parallel sections; the
   astar grids abort with exit 1 if any domain count's optimal cost
   diverges bit-wise from the first's)

   The astar sections additionally write BENCH_astar.json (search-engine
   scaling data), the robust sections BENCH_robust.json (drifted-stream
   comparison), the durable sections BENCH_durable.json (WAL/checkpoint
   overhead and recovery time), the multiview-par sections
   BENCH_multiview.json (pooled coordinator + concurrent flush data), the
   serve sections BENCH_serve.json (shared SLO scheduler vs independent
   per-tenant ONLINE), the serve-io sections BENCH_serveio.json
   (group-commit window fsync accounting, throughput vs per-tenant
   Always WALs, off-thread checkpoint stall — each a hard gate) and the
   ho sections BENCH_ho.json (first-order vs
   higher-order cost curves and re-derived planner bounds) to
   the working directory, each stamped with a "meta" block (commit,
   ocaml_version, domains swept, host cores); the -smoke variants are
   tiny grids wired to the @bench-smoke alias so the bench binary cannot
   rot. *)

let section title =
  Printf.printf "\n==== %s ====\n%!" title

let fcell = Util.Tablefmt.float_cell

(* When --csv DIR is given, every table is also written to DIR/<name>.csv. *)
let csv_dir : string option ref = ref None

let emit ~name ?aligns ~header rows =
  Util.Tablefmt.print ?aligns ~header rows;
  match !csv_dir with
  | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      Util.Tablefmt.write_csv ~path ~header rows;
      Printf.printf "(written to %s)\n" path
  | None -> ()

(* Scale and seeds used throughout; deterministic. *)
let tpcr_scale = 0.05
let base_seed = 42

(* Domain counts swept by the parallel sections (astar grids, multiview-par)
   and the fan-out width for scenario-parallel sections; --domains overrides. *)
let bench_domains : int list ref = ref [ 1; 2; 4 ]
let fanout_domains () = List.fold_left max 1 !bench_domains

(* Run metadata stamped into every BENCH_*.json so the perf trajectory is
   comparable across PRs and machines. *)
let git_commit =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let meta_json () =
  Printf.sprintf
    "\"meta\": { \"commit\": %S, \"ocaml_version\": %S, \"domains\": [%s], \
     \"host_cores\": %d }"
    (Lazy.force git_commit) Sys.ocaml_version
    (String.concat ", " (List.map string_of_int !bench_domains))
    (Domain.recommended_domain_count ())

(* The batch sizes swept for the cost-curve figures. *)
let curve_sizes = [ 1; 2; 5; 10; 20; 50; 100; 200; 400; 600; 800; 1000 ]

(* --- shared environments -------------------------------------------------- *)

let fresh_tpcr ?(seed = base_seed) () =
  let db = Tpcr.Gen.generate ~seed ~scale:tpcr_scale () in
  let m =
    Ivm.Maintainer.create ~meter:db.Tpcr.Gen.meter
      (Tpcr.Gen.min_supplycost_view db)
  in
  Relation.Meter.reset db.Tpcr.Gen.meter;
  (db, m)

(* Calibrated TPC-R cost functions (Fig. 4 data) with the planner spec
   parameters derived from them.  Computed once and reused by the intro,
   fig5, fig6, fig7 and ablation sections. *)
let calibration =
  lazy
    (let db, m = fresh_tpcr () in
     let feeds = Tpcr.Updates.paper_feeds ~seed:7 db in
     let ps_curve = Bridge.Calibrate.measure_curve m feeds ~table:0 ~sizes:curve_sizes in
     let s_curve = Bridge.Calibrate.measure_curve m feeds ~table:1 ~sizes:curve_sizes in
     (* The planner simulates with the measured (tabulated) curves — the
        paper's methodology; the affine fits are reported for Fig. 4. *)
     let f_ps = Bridge.Calibrate.tabulated ~name:"c_dPartSupp" ps_curve in
     let f_s = Bridge.Calibrate.tabulated ~name:"c_dSupplier" s_curve in
     let _, fit_ps = Bridge.Calibrate.fitted ~name:"c_dPartSupp" ps_curve in
     let _, fit_s = Bridge.Calibrate.fitted ~name:"c_dSupplier" s_curve in
     List.iter
       (fun f ->
         if not (Cost.Check.is_subadditive ~upto:256 f) then
           Printf.printf
             "note: measured curve %s deviates slightly from subadditivity \
              (measurement noise; cf. paper §7 — Cost.Func.subadditive_hull \
              can repair it)\n"
             (Cost.Func.name f))
       [ f_ps; f_s ];
     (ps_curve, s_curve, f_ps, fit_ps, f_s, fit_s))

let paper_costs () =
  let _, _, f_ps, _, f_s, _ = Lazy.force calibration in
  let untouched = Cost.Func.linear ~a:1.0 in
  [| f_ps; f_s; untouched; untouched |]

(* Response-time constraint used for fig5/fig6: twice the flat part of the
   PartSupp curve, the regime the paper's Fig. 6 operates in (the
   constraint is a small multiple of one batch's fixed cost). *)
let fig6_limit () =
  let _, _, f_ps, _, _, _ = Lazy.force calibration in
  2.0 *. Cost.Func.eval f_ps 1

let uniform_spec ~limit ~horizon =
  Abivm.Spec.make ~costs:(paper_costs ()) ~limit
    ~arrivals:(Array.init (horizon + 1) (fun _ -> [| 1; 1; 0; 0 |]))

(* --- Fig. 1: two-table join cost functions --------------------------------- *)

let run_fig1 () =
  section "Fig. 1 — cost functions c_dR (indexed) and c_dS (no index), view R |x| S";
  let db2 = Tpcr.Synth.generate ~seed:base_seed ~r_rows:20_000 ~s_rows:20_000 () in
  let m = Ivm.Maintainer.create ~meter:db2.Tpcr.Synth.meter (Tpcr.Synth.join_view db2) in
  Relation.Meter.reset db2.Tpcr.Synth.meter;
  let feeds = Tpcr.Synth.insert_feeds ~seed:11 db2 in
  let r_curve = Bridge.Calibrate.measure_curve m feeds ~table:0 ~sizes:curve_sizes in
  let s_curve = Bridge.Calibrate.measure_curve m feeds ~table:1 ~sizes:curve_sizes in
  emit ~name:"fig1"
    ~aligns:[ Util.Tablefmt.Right; Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "batch size"; "c_dR (cost units)"; "c_dS (cost units)" ]
    (List.map2
       (fun (k, cr) (_, cs) -> [ string_of_int k; fcell cr; fcell cs ])
       r_curve s_curve);
  let growth curve = List.assoc 1000 curve /. List.assoc 1 curve in
  Printf.printf
    "shape check: c_dR grows %.1fx over 1..1000 (paper: ~flat), c_dS grows \
     %.1fx (paper: linear)\n"
    (growth r_curve) (growth s_curve)

(* --- §1 intro example: symmetric vs asymmetric cost per modification ------- *)

let run_intro () =
  section "§1 example — symmetric vs asymmetric amortized cost (R |x| S)";
  let db2 = Tpcr.Synth.generate ~seed:base_seed ~r_rows:20_000 ~s_rows:20_000 () in
  let m = Ivm.Maintainer.create ~meter:db2.Tpcr.Synth.meter (Tpcr.Synth.join_view db2) in
  Relation.Meter.reset db2.Tpcr.Synth.meter;
  let feeds = Tpcr.Synth.insert_feeds ~seed:13 db2 in
  let sizes = [ 1; 10; 50; 100; 300; 600; 1000 ] in
  let r_curve = Bridge.Calibrate.measure_curve m feeds ~table:0 ~sizes in
  let s_curve = Bridge.Calibrate.measure_curve m feeds ~table:1 ~sizes in
  let f_r = Bridge.Calibrate.tabulated ~name:"c_dR" r_curve in
  let f_s, _ = Bridge.Calibrate.fitted ~name:"c_dS" s_curve in
  (* The paper's setting: C is where c_dR saturates (0.35 s there). *)
  let limit = 1.05 *. Cost.Func.eval f_r 600 in
  let horizon = 3000 in
  let arrivals = Array.init (horizon + 1) (fun _ -> [| 1; 1 |]) in
  let spec = Abivm.Spec.make ~costs:[| f_r; f_s |] ~limit ~arrivals in
  let naive = Abivm.Simulate.naive spec in
  let online = Abivm.Simulate.online spec in
  emit ~name:"intro"
    ~aligns:[ Util.Tablefmt.Left; Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "strategy"; "total cost"; "cost per modification" ]
    [
      [ "symmetric (NAIVE)"; fcell naive.Abivm.Report.total_cost;
        fcell ~decimals:4 (Abivm.Simulate.cost_per_modification spec naive) ];
      [ "asymmetric (ONLINE)"; fcell online.Abivm.Report.total_cost;
        fcell ~decimals:4 (Abivm.Simulate.cost_per_modification spec online) ];
    ];
  Printf.printf
    "shape check: asymmetric/symmetric per-mod ratio = %.2f (paper: 0.42/0.97 \
     = 0.43)\n"
    (Abivm.Simulate.cost_per_modification spec online
    /. Abivm.Simulate.cost_per_modification spec naive)

(* --- Fig. 4: TPC-R maintenance cost curves --------------------------------- *)

let run_fig4 () =
  section "Fig. 4 — TPC-R view maintenance cost vs batch size";
  let ps_curve, s_curve, _, fit_ps, _, fit_s = Lazy.force calibration in
  emit ~name:"fig4"
    ~aligns:[ Util.Tablefmt.Right; Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "batch size"; "PartSupp updates"; "Supplier updates" ]
    (List.map2
       (fun (k, cp) (_, cs) -> [ string_of_int k; fcell cp; fcell cs ])
       ps_curve s_curve);
  Printf.printf
    "affine fits: PartSupp a=%.1f b=%.1f (r2=%.3f) | Supplier a=%.1f b=%.1f \
     (r2=%.3f)\n"
    fit_ps.Cost.Fit.a fit_ps.Cost.Fit.b fit_ps.Cost.Fit.r2 fit_s.Cost.Fit.a
    fit_s.Cost.Fit.b fit_s.Cost.Fit.r2;
  Printf.printf
    "shape check: Supplier curve linear and steeper (slope ratio %.1fx); \
     PartSupp flat-ish after initial increase\n"
    (fit_s.Cost.Fit.a /. fit_ps.Cost.Fit.a)

(* --- Fig. 5: simulation validation ----------------------------------------- *)

let run_fig5 () =
  section "Fig. 5 — simulated vs executed (real engine) plan costs";
  let limit = fig6_limit () in
  let spec = uniform_spec ~limit ~horizon:300 in
  let plans =
    [
      ("NAIVE", Abivm.Naive.plan spec);
      ("ONLINE", Abivm.Online.plan spec);
      ("OPT-LGM", (Abivm.Astar.solve spec).Abivm.Astar.plan);
    ]
  in
  let rows =
    List.map
      (fun (name, plan) ->
        let db, m = fresh_tpcr ~seed:101 () in
        let feeds = Tpcr.Updates.paper_feeds ~seed:23 db in
        let report =
          Bridge.Runner.run_plan
            (Bridge.Runner.engine ~maintainer:m ~feeds)
            spec plan
        in
        let simulated = report.Abivm.Report.total_cost in
        let executed =
          Option.value ~default:0.0 report.Abivm.Report.cost_units
        in
        [
          name;
          fcell simulated;
          fcell executed;
          Printf.sprintf "%.1f%%" (100.0 *. Float.abs (simulated -. executed) /. executed);
          string_of_bool report.Abivm.Report.valid;
        ])
      plans
  in
  emit ~name:"fig5"
    ~aligns:[ Util.Tablefmt.Left; Util.Tablefmt.Right; Util.Tablefmt.Right;
              Util.Tablefmt.Right; Util.Tablefmt.Left ]
    ~header:[ "plan"; "simulated cost"; "executed cost"; "error"; "view consistent" ]
    rows;
  print_endline
    "shape check: negligible simulated-vs-executed difference (paper: curves overlap)"

(* --- Fig. 6: varying refresh time ------------------------------------------ *)

let run_fig6 () =
  section "Fig. 6 — total cost vs refresh time (1 PartSupp + 1 Supplier update per step)";
  let limit = fig6_limit () in
  Printf.printf "response-time constraint C = %.0f cost units\n" limit;
  let refresh_times = [ 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ] in
  let rows =
    List.map
      (fun horizon ->
        let spec = uniform_spec ~limit ~horizon in
        let reports = Abivm.Simulate.all ~adapt_t0:500 spec in
        string_of_int horizon
        :: List.map
             (fun (r : Abivm.Report.t) ->
               assert r.valid;
               fcell ~decimals:0 r.total_cost)
             reports)
      refresh_times
  in
  emit ~name:"fig6"
    ~aligns:
      [ Util.Tablefmt.Right; Util.Tablefmt.Right; Util.Tablefmt.Right;
        Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "refresh time"; "NAIVE"; "OPT-LGM"; "ADAPT(T0=500)"; "ONLINE" ]
    rows;
  let spec = uniform_spec ~limit ~horizon:1000 in
  let cost name =
    (List.find
       (fun (r : Abivm.Report.t) -> Abivm.Report.name r = name)
       (Abivm.Simulate.all ~adapt_t0:500 spec))
      .Abivm.Report.total_cost
  in
  Printf.printf
    "shape check at T=1000: NAIVE/OPT = %.2f (worst), ADAPT/OPT = %.2f, \
     ONLINE/OPT = %.2f (paper: NAIVE clearly worst; ADAPT and ONLINE close \
     to OPT)\n"
    (cost "NAIVE" /. cost "OPT-LGM")
    (cost "ADAPT" /. cost "OPT-LGM")
    (cost "ONLINE" /. cost "OPT-LGM")

(* --- Fig. 7: non-uniform arrivals ------------------------------------------ *)

let run_fig7 () =
  section "Fig. 7 — non-uniform modification arrivals (SS/SU/FS/FU)";
  let limit = fig6_limit () *. 20.0 /. 12.0 in
  (* paper: C goes 12 s -> 20 s *)
  Printf.printf "response-time constraint C = %.0f cost units\n" limit;
  let streams =
    [
      ("SS", Workload.Arrivals.slow_stable);
      ("SU", Workload.Arrivals.slow_unstable);
      ("FS", Workload.Arrivals.fast_stable);
      ("FU", Workload.Arrivals.fast_unstable);
    ]
  in
  let rows =
    List.map
      (fun (label, stream) ->
        let arrivals =
          Workload.Arrivals.generate ~seed:(base_seed + 5) ~horizon:1000
            [| stream; stream;
               Workload.Arrivals.Constant 0; Workload.Arrivals.Constant 0 |]
        in
        let spec = Abivm.Spec.make ~costs:(paper_costs ()) ~limit ~arrivals in
        let reports = Abivm.Simulate.all ~adapt_t0:500 spec in
        label
        :: List.map
             (fun (r : Abivm.Report.t) ->
               assert r.valid;
               fcell ~decimals:0 r.total_cost)
             reports)
      streams
  in
  emit ~name:"fig7"
    ~aligns:
      [ Util.Tablefmt.Left; Util.Tablefmt.Right; Util.Tablefmt.Right;
        Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "stream"; "NAIVE"; "OPT-LGM"; "ADAPT(T0=500)"; "ONLINE" ]
    rows;
  print_endline
    "shape check: NAIVE worst on all four streams; ONLINE close to OPT on \
     stable (SS/FS), further on unstable (SU/FU)"

(* --- §3.2 tightness of Theorem 1 -------------------------------------------- *)

let run_tightness () =
  section "§3.2 — tightness of the factor-2 LGM bound (step cost function)";
  let rows =
    List.map
      (fun eps ->
        let limit = 10.0 in
        let f = Cost.Func.step_tightness ~eps ~limit in
        let per_step = int_of_float (2.0 /. eps) + 1 in
        let arrivals = Array.make 4 [| per_step |] in
        let spec = Abivm.Spec.make ~costs:[| f |] ~limit ~arrivals in
        let exact_cost, _ = Abivm.Exact.solve spec in
        let lgm_cost = (Abivm.Astar.solve spec).Abivm.Astar.cost in
        [
          Printf.sprintf "%.3f" eps;
          string_of_int per_step;
          fcell exact_cost;
          fcell lgm_cost;
          fcell ~decimals:3 (lgm_cost /. exact_cost);
        ])
      [ 1.0; 0.5; 0.25; 0.125 ]
  in
  emit ~name:"tightness"
    ~aligns:
      [ Util.Tablefmt.Right; Util.Tablefmt.Right; Util.Tablefmt.Right;
        Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "eps"; "arrivals/step"; "OPT"; "OPT-LGM"; "ratio" ]
    rows;
  print_endline
    "shape check: ratio climbs toward 2 as eps shrinks (Theorem 1 is tight)"

(* --- ablations --------------------------------------------------------------- *)

let run_ablation () =
  section "Ablation — ONLINE rate predictors on unstable streams";
  let limit = fig6_limit () *. 20.0 /. 12.0 in
  let predictors =
    [
      ("EWMA(0.2)", Abivm.Online.Ewma 0.2);
      ("EWMA(0.05)", Abivm.Online.Ewma 0.05);
      ("EWMA+1sd", Abivm.Online.Ewma_conservative { alpha = 0.2; z = 1.0 });
      ("Window(10)", Abivm.Online.Window 10);
      ("Oracle", Abivm.Online.Oracle);
    ]
  in
  let streams =
    [ ("FS", Workload.Arrivals.fast_stable); ("FU", Workload.Arrivals.fast_unstable) ]
  in
  let rows =
    List.map
      (fun (label, stream) ->
        let arrivals =
          Workload.Arrivals.generate ~seed:(base_seed + 9) ~horizon:1000
            [| stream; stream;
               Workload.Arrivals.Constant 0; Workload.Arrivals.Constant 0 |]
        in
        let spec = Abivm.Spec.make ~costs:(paper_costs ()) ~limit ~arrivals in
        let opt = (Abivm.Astar.solve spec).Abivm.Astar.cost in
        label :: fcell ~decimals:0 opt
        :: List.map
             (fun (_, predictor) ->
               fcell ~decimals:0
                 (Abivm.Plan.cost spec (Abivm.Online.plan ~predictor spec)))
             predictors)
      streams
  in
  emit ~name:"ablation_predictors"
    ~aligns:(List.init 7 (fun _ -> Util.Tablefmt.Right))
    ~header:("stream" :: "OPT-LGM" :: List.map fst predictors)
    rows;
  section "Ablation — ONLINE scoring criterion (is the paper's H the right one?)";
  let rows =
    List.map
      (fun (label, stream) ->
        let arrivals =
          Workload.Arrivals.generate ~seed:(base_seed + 9) ~horizon:1000
            [| stream; stream;
               Workload.Arrivals.Constant 0; Workload.Arrivals.Constant 0 |]
        in
        let spec = Abivm.Spec.make ~costs:(paper_costs ()) ~limit ~arrivals in
        let opt = (Abivm.Astar.solve spec).Abivm.Astar.cost in
        let with_scorer scorer =
          fcell ~decimals:0 (Abivm.Plan.cost spec (Abivm.Online.plan ~scorer spec))
        in
        [
          label;
          fcell ~decimals:0 opt;
          with_scorer Abivm.Online.Amortized_total;
          with_scorer Abivm.Online.Amortized_marginal;
          with_scorer Abivm.Online.Cheapest;
        ])
      [ ("constant", Workload.Arrivals.Constant 1);
        ("FS", Workload.Arrivals.fast_stable);
        ("FU", Workload.Arrivals.fast_unstable) ]
  in
  emit ~name:"ablation_scorers"
    ~aligns:(List.init 5 (fun _ -> Util.Tablefmt.Right))
    ~header:[ "stream"; "OPT-LGM"; "H (paper)"; "marginal"; "cheapest" ]
    rows;
  section "Ablation — A* heuristic pruning";
  let rows =
    List.map
      (fun horizon ->
        let spec = uniform_spec ~limit:(fig6_limit ()) ~horizon in
        let with_h = (Abivm.Astar.solve ~use_heuristic:true spec).Abivm.Astar.stats in
        let without_h = (Abivm.Astar.solve ~use_heuristic:false spec).Abivm.Astar.stats in
        [
          string_of_int horizon;
          string_of_int with_h.Abivm.Astar.expanded;
          string_of_int without_h.Abivm.Astar.expanded;
          Printf.sprintf "%.2fx"
            (float_of_int without_h.Abivm.Astar.expanded
            /. float_of_int (max 1 with_h.Abivm.Astar.expanded));
        ])
      [ 200; 500; 1000 ]
  in
  emit ~name:"ablation_astar"
    ~aligns:(List.init 4 (fun _ -> Util.Tablefmt.Right))
    ~header:[ "horizon"; "A* expanded"; "Dijkstra expanded"; "pruning" ]
    rows

(* --- §7 future work: operator-level batching (lib/opflow) ------------------- *)

let run_opflow () =
  section
    "§7 extension — operator-level batching (propagate through cheap \
     operators, batch before expensive ones)";
  let stage name cost selectivity = { Opflow.Pipeline.name; cost; selectivity } in
  let chain limit =
    Opflow.Pipeline.make ~limit
      [
        stage "filter" (Cost.Func.linear ~a:1.0) 0.2;
        stage "join" (Cost.Func.plateau ~a:30.0 ~cap:800.0) 1.0;
        stage "aggregate" (Cost.Func.linear ~a:0.5) 1.0;
      ]
  in
  let rows =
    List.map
      (fun limit ->
        let p = chain limit in
        let arrivals = Array.make 1000 2 in
        let naive = Opflow.Strategy.naive p ~arrivals in
        let greedy = Opflow.Strategy.greedy p ~arrivals in
        assert (naive.Opflow.Strategy.valid && greedy.Opflow.Strategy.valid);
        [
          fcell ~decimals:0 limit;
          fcell ~decimals:0 naive.Opflow.Strategy.total_cost;
          fcell ~decimals:0 greedy.Opflow.Strategy.total_cost;
          Printf.sprintf "%.2fx"
            (naive.Opflow.Strategy.total_cost /. greedy.Opflow.Strategy.total_cost);
        ])
      [ 900.0; 1200.0; 1600.0; 2400.0 ]
  in
  emit ~name:"opflow"
    ~aligns:(List.init 4 (fun _ -> Util.Tablefmt.Right))
    ~header:[ "limit C"; "NAIVE (all ops)"; "GREEDY (asym ops)"; "gain" ]
    rows;
  (* Exact optimum on a small constrained instance to situate greedy. *)
  let p = chain 300.0 in
  let arrivals = Array.make 40 6 in
  let exact = Opflow.Strategy.exact p ~arrivals in
  let greedy = (Opflow.Strategy.greedy p ~arrivals).Opflow.Strategy.total_cost in
  let naive = (Opflow.Strategy.naive p ~arrivals).Opflow.Strategy.total_cost in
  Printf.printf
    "small instance (T=40): exact %.0f <= greedy %.0f (%.2fx) <= naive %.0f \
     (%.2fx)\n"
    exact greedy (greedy /. exact) naive (naive /. exact)

(* --- §7 open questions, studied empirically ---------------------------------- *)

let run_conjectures () =
  section
    "§7 open question 1 — how far can ONLINE drift from OPT? (empirical \
     worst case over random instances)";
  let prng = Util.Prng.create ~seed:2718 in
  let worst = ref 1.0 and total_ratio = ref 0.0 in
  let trials = 150 in
  for _ = 1 to trials do
    let a1 = 0.5 +. Util.Prng.float prng 3.0 in
    let cap = 5.0 +. Util.Prng.float prng 40.0 in
    let a2 = 0.5 +. Util.Prng.float prng 3.0 in
    let b2 = Util.Prng.float prng 5.0 in
    let costs = [| Cost.Func.plateau ~a:a1 ~cap; Cost.Func.affine ~a:a2 ~b:b2 |] in
    let limit = cap +. 5.0 +. Util.Prng.float prng 30.0 in
    let horizon = 40 + Util.Prng.int prng 160 in
    let arrivals =
      Array.init (horizon + 1) (fun _ ->
          [| Util.Prng.int prng 3; Util.Prng.int prng 3 |])
    in
    let spec = Abivm.Spec.make ~costs ~limit ~arrivals in
    let opt = (Abivm.Astar.solve spec).Abivm.Astar.cost in
    if opt > 0.0 then begin
      let online = Abivm.Plan.cost spec (Abivm.Online.plan spec) in
      let ratio = online /. opt in
      total_ratio := !total_ratio +. ratio;
      if ratio > !worst then worst := ratio
    end
  done;
  Printf.printf
    "over %d random plateau+affine instances: mean ONLINE/OPT-LGM = %.3f, \
     worst = %.3f\n"
    trials
    (!total_ratio /. float_of_int trials)
    !worst;
  section
    "§7 open question 2 — is the LGM bound better than 2 for CONCAVE costs?";
  let prng = Util.Prng.create ~seed:3141 in
  let worst = ref 1.0 in
  let trials = 80 in
  let attempted = ref 0 in
  for _ = 1 to trials do
    let costs =
      Array.init
        (1 + Util.Prng.int prng 1)
        (fun _ ->
          if Util.Prng.bool prng then
            Cost.Func.concave_sqrt
              ~a:(1.0 +. Util.Prng.float prng 4.0)
              ~b:(Util.Prng.float prng 3.0)
          else
            Cost.Func.logarithmic
              ~a:(1.0 +. Util.Prng.float prng 5.0)
              ~b:(Util.Prng.float prng 3.0))
    in
    let limit = 4.0 +. Util.Prng.float prng 8.0 in
    let horizon = 3 + Util.Prng.int prng 3 in
    let n = Array.length costs in
    let arrivals =
      Array.init (horizon + 1) (fun _ ->
          Array.init n (fun _ -> Util.Prng.int prng 3))
    in
    let spec = Abivm.Spec.make ~costs ~limit ~arrivals in
    match Abivm.Exact.solve ~max_expansions:300_000 spec with
    | exception Abivm.Exact.Too_large _ -> ()
    | opt, _ when opt > 0.0 ->
        incr attempted;
        let lgm = (Abivm.Astar.solve spec).Abivm.Astar.cost in
        if lgm /. opt > !worst then worst := lgm /. opt
    | _ -> ()
  done;
  Printf.printf
    "over %d solvable random concave instances: worst OPT-LGM/OPT = %.4f \
     (step costs reach %.3f at eps=0.125 — concavity seems to close the \
     gap, supporting the paper's conjecture)\n"
    !attempted !worst
    (42.5 /. 22.5)

(* --- multi-view coordination -------------------------------------------------- *)

let run_multiview () =
  section
    "Multi-view extension — sharing maintenance work across views \
     (piggyback co-flushing)";
  let steep = Cost.Func.affine ~a:3.0 ~b:10.0 in
  let flat = Cost.Func.plateau ~a:5.0 ~cap:50.0 in
  let views =
    [|
      { Multiview.Coordinator.name = "tight"; costs = [| steep; flat |]; limit = 60.0 };
      { Multiview.Coordinator.name = "medium"; costs = [| steep; flat |]; limit = 120.0 };
      { Multiview.Coordinator.name = "loose"; costs = [| steep; flat |]; limit = 240.0 };
    |]
  in
  let arrivals =
    Workload.Arrivals.generate ~seed:77 ~horizon:1000
      [| Workload.Arrivals.Constant 1; Workload.Arrivals.fast_stable |]
  in
  let rows =
    List.map
      (fun discount ->
        let shared_setup = [| discount; discount |] in
        let ind =
          Multiview.Coordinator.independent ~views ~shared_setup ~arrivals ()
        in
        let pig =
          Multiview.Coordinator.piggyback ~views ~shared_setup ~arrivals ()
        in
        assert (ind.Multiview.Coordinator.valid && pig.Multiview.Coordinator.valid);
        [
          fcell ~decimals:0 discount;
          fcell ~decimals:0 ind.Multiview.Coordinator.total_cost;
          string_of_int ind.Multiview.Coordinator.co_flushes;
          fcell ~decimals:0 pig.Multiview.Coordinator.total_cost;
          string_of_int pig.Multiview.Coordinator.co_flushes;
          Printf.sprintf "%.2fx"
            (ind.Multiview.Coordinator.total_cost
            /. pig.Multiview.Coordinator.total_cost);
        ])
      [ 0.0; 8.0; 14.0; 25.0 ]
  in
  emit ~name:"multiview"
    ~aligns:(List.init 6 (fun _ -> Util.Tablefmt.Right))
    ~header:
      [ "shared setup"; "independent"; "co-flushes"; "piggyback"; "co-flushes";
        "gain" ]
    rows;
  print_endline
    "three subscriptions with different QoS limits over the same streams: \
     coordination aligns their flushes to share base-table work"

(* --- parallel multiview flushes ----------------------------------------------- *)

(* Two-part section.  Part 1 runs the planning coordinator with its
   per-view flush decisions fanned out over the domain pool and asserts the
   outcome is identical to the sequential run at every domain count (the
   per-view choices depend only on each view's own frozen state, so
   parallelism must not change the answer).  Part 2 builds four real IVM
   engine views (independent TPC-R-style databases and maintainers) that
   share one {!Relation.Meter}, flushes them concurrently, and asserts the
   merged sharded counters equal the sequential totals bit-for-bit. *)
let run_multiview_par_grid ~name ~horizon ~rows ~steps () =
  let domains_list = !bench_domains in
  section
    (Printf.sprintf
       "Parallel multiview (%s grid) — pooled coordinator + concurrent \
        engine flushes at domains in {%s}"
       name
       (String.concat ", " (List.map string_of_int domains_list)));
  (* Part 1: coordinator. *)
  let steep = Cost.Func.affine ~a:3.0 ~b:10.0 in
  let flat = Cost.Func.plateau ~a:5.0 ~cap:50.0 in
  let views =
    Array.init 4 (fun v ->
        {
          Multiview.Coordinator.name = Printf.sprintf "view%d" v;
          costs = [| steep; flat |];
          limit = 60.0 *. float_of_int (v + 1);
        })
  in
  let arrivals =
    Workload.Arrivals.generate ~seed:77 ~horizon
      [| Workload.Arrivals.Constant 1; Workload.Arrivals.fast_stable |]
  in
  let shared_setup = [| 8.0; 8.0 |] in
  let outcomes_equal (a : Multiview.Coordinator.outcome)
      (b : Multiview.Coordinator.outcome) =
    a.Multiview.Coordinator.total_cost = b.Multiview.Coordinator.total_cost
    && a.Multiview.Coordinator.undiscounted_cost
       = b.Multiview.Coordinator.undiscounted_cost
    && a.Multiview.Coordinator.co_flushes = b.Multiview.Coordinator.co_flushes
    && a.Multiview.Coordinator.valid = b.Multiview.Coordinator.valid
    && a.Multiview.Coordinator.per_view_cost
       = b.Multiview.Coordinator.per_view_cost
  in
  let seq_outcome =
    Multiview.Coordinator.independent ~views ~shared_setup ~arrivals ()
  in
  let coord_runs =
    List.map
      (fun domains ->
        Parallel.Pool.with_pool ~domains (fun pool ->
            let t0 = Unix.gettimeofday () in
            let out =
              Multiview.Coordinator.independent ~pool ~views ~shared_setup
                ~arrivals ()
            in
            let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
            if not (outcomes_equal seq_outcome out) then begin
              Printf.eprintf
                "FAIL: pooled coordinator (domains=%d) diverged from the \
                 sequential outcome\n"
                domains;
              exit 1
            end;
            (domains, wall_ms, out.Multiview.Coordinator.total_cost)))
      domains_list
  in
  (* Part 2: concurrent engine flushes over one shared meter. *)
  let flush_views pool_opt =
    let shared = Relation.Meter.create () in
    let engines =
      Array.init 4 (fun v ->
          let db =
            Tpcr.Synth.generate ~seed:(base_seed + 31 + v) ~r_rows:rows
              ~s_rows:rows ()
          in
          let m =
            Ivm.Maintainer.create ~meter:shared (Tpcr.Synth.join_view db)
          in
          let feeds = Tpcr.Synth.insert_feeds ~seed:(base_seed + 57 + v) db in
          (m, feeds))
    in
    let work (m, feeds) =
      for step = 1 to steps do
        let i = step land 1 in
        Ivm.Maintainer.on_arrive m i (feeds.Tpcr.Updates.next i);
        if step mod 8 = 0 then ignore (Ivm.Maintainer.refresh m)
      done;
      ignore (Ivm.Maintainer.refresh m)
    in
    let t0 = Unix.gettimeofday () in
    (match pool_opt with
    | Some pool -> ignore (Parallel.Pool.map pool work engines)
    | None -> Array.iter work engines);
    let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    (Relation.Meter.snapshot shared, wall_ms)
  in
  let seq_snap, seq_flush_ms = flush_views None in
  let flush_runs =
    List.map
      (fun domains ->
        Parallel.Pool.with_pool ~domains (fun pool ->
            let snap, wall_ms = flush_views (Some pool) in
            if snap <> seq_snap then begin
              Printf.eprintf
                "FAIL: concurrent flush (domains=%d) meter totals diverged \
                 from the sequential totals\n"
                domains;
              exit 1
            end;
            (domains, wall_ms)))
      domains_list
  in
  emit
    ~name:("multiview_par_" ^ name)
    ~aligns:(List.init 5 (fun _ -> Util.Tablefmt.Right))
    ~header:
      [ "domains"; "coordinator (ms)"; "total cost"; "flush 4 views (ms)";
        "meter totals" ]
    (List.map2
       (fun (domains, coord_ms, total_cost) (_, flush_ms) ->
         [
           string_of_int domains;
           fcell ~decimals:1 coord_ms;
           fcell ~decimals:0 total_cost;
           fcell ~decimals:1 flush_ms;
           "match";
         ])
       coord_runs flush_runs);
  Printf.printf
    "sequential flush of the same 4 views: %.1f ms; every pooled run's \
     shared-meter snapshot equals the sequential one bit-for-bit\n"
    seq_flush_ms;
  (* Machine-readable copy for regression tracking across PRs. *)
  let path = "BENCH_multiview.json" in
  let oc = open_out path in
  let coord_entry (domains, wall_ms, total_cost) =
    Printf.sprintf
      "    { \"domains\": %d, \"wall_ms\": %.3f, \"total_cost\": %.6f, \
       \"matches_sequential\": true }"
      domains wall_ms total_cost
  in
  let flush_entry (domains, wall_ms) =
    Printf.sprintf
      "    { \"domains\": %d, \"wall_ms\": %.3f, \"totals_match\": true }"
      domains wall_ms
  in
  Printf.fprintf oc
    "{\n  \"grid\": \"%s\",\n  %s,\n  \"views\": 4,\n  \
     \"sequential_flush_wall_ms\": %.3f,\n  \"coordinator\": [\n%s\n  ],\n  \
     \"flush\": [\n%s\n  ]\n}\n"
    name (meta_json ()) seq_flush_ms
    (String.concat ",\n" (List.map coord_entry coord_runs))
    (String.concat ",\n" (List.map flush_entry flush_runs));
  close_out oc;
  Printf.printf "(written to %s)\n" path

let run_multiview_par () =
  run_multiview_par_grid ~name:"reference" ~horizon:1000 ~rows:1200 ~steps:400
    ()

let run_multiview_par_smoke () =
  run_multiview_par_grid ~name:"smoke" ~horizon:120 ~rows:150 ~steps:48 ()

(* --- A* search-engine scaling ------------------------------------------------ *)

(* Synthetic planner instances that stress the search layer itself (no
   TPC-R calibration): alternating plateau/linear costs with a limit tight
   enough that full states offer many minimal greedy subsets, so both the
   action enumeration and the open list grow with table count. *)
let astar_grid_spec ~tables ~horizon =
  let costs =
    Array.init tables (fun i ->
        if i mod 2 = 0 then Cost.Func.plateau ~a:1.0 ~cap:6.0
        else Cost.Func.linear ~a:1.5)
  in
  let limit = 3.0 +. (1.5 *. float_of_int tables) in
  let arrivals = Array.init (horizon + 1) (fun _ -> Array.make tables 1) in
  Abivm.Spec.make ~costs ~limit ~arrivals

let run_astar_grid ~name grid =
  let domains_list = !bench_domains in
  section
    (Printf.sprintf
       "A* engine scaling (%s grid) — sequential vs HDA* at domains in {%s}"
       name
       (String.concat ", " (List.map string_of_int domains_list)));
  let results =
    List.concat_map
      (fun (tables, horizon) ->
        let spec = astar_grid_spec ~tables ~horizon in
        List.map
          (fun domains ->
            let t0 = Unix.gettimeofday () in
            let r = Abivm.Astar.solve ~domains spec in
            let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
            (tables, horizon, domains, r, wall_ms))
          domains_list)
      grid
  in
  (* Every domain count must agree bit-for-bit on the optimal cost; a
     divergence is a sharding bug and fails the whole bench run (CI keys
     off this exit code). *)
  List.iter
    (fun (gt, gh) ->
      let costs =
        List.filter_map
          (fun (t, h, d, (r : Abivm.Astar.result), _) ->
            if t = gt && h = gh then Some (d, r.Abivm.Astar.cost) else None)
          results
      in
      match costs with
      | (d0, c0) :: rest ->
          List.iter
            (fun (d, c) ->
              if Int64.bits_of_float c <> Int64.bits_of_float c0 then begin
                Printf.eprintf
                  "FAIL: tables=%d horizon=%d: %d-domain cost %.17g diverges \
                   from %d-domain cost %.17g\n"
                  gt gh d c d0 c0;
                exit 1
              end)
            rest
      | [] -> ())
    grid;
  let wall_at_one gt gh =
    List.find_map
      (fun (t, h, d, _, wall) ->
        if t = gt && h = gh && d = 1 then Some wall else None)
      results
  in
  emit ~name:("astar_" ^ name)
    ~aligns:(List.init 10 (fun _ -> Util.Tablefmt.Right))
    ~header:
      [ "tables"; "horizon"; "domains"; "cost"; "expanded"; "generated";
        "pruned"; "peak queue"; "wall (ms)"; "speedup" ]
    (List.map
       (fun (tables, horizon, domains, (r : Abivm.Astar.result), wall_ms) ->
         [
           string_of_int tables;
           string_of_int horizon;
           string_of_int domains;
           fcell r.Abivm.Astar.cost;
           string_of_int r.Abivm.Astar.stats.Abivm.Astar.expanded;
           string_of_int r.Abivm.Astar.stats.Abivm.Astar.generated;
           string_of_int r.Abivm.Astar.stats.Abivm.Astar.pruned;
           string_of_int r.Abivm.Astar.stats.Abivm.Astar.max_queue;
           fcell ~decimals:1 wall_ms;
           (match wall_at_one tables horizon with
           | Some base when wall_ms > 0.0 ->
               Printf.sprintf "%.2fx" (base /. wall_ms)
           | _ -> "-");
         ])
       results);
  (* Machine-readable copy for regression tracking across PRs. *)
  let path = "BENCH_astar.json" in
  let oc = open_out path in
  let entry (tables, horizon, domains, (r : Abivm.Astar.result), wall_ms) =
    let s = r.Abivm.Astar.stats in
    Printf.sprintf
      "    { \"tables\": %d, \"horizon\": %d, \"domains\": %d, \"cost\": \
       %.6f, \"expanded\": %d, \"generated\": %d, \"reopened\": %d, \
       \"pruned\": %d, \"queue_peak\": %d, \"live_peak\": %d, \"wall_ms\": \
       %.3f }"
      tables horizon domains r.Abivm.Astar.cost s.Abivm.Astar.expanded
      s.Abivm.Astar.generated s.Abivm.Astar.reopened s.Abivm.Astar.pruned
      s.Abivm.Astar.max_queue s.Abivm.Astar.max_live wall_ms
  in
  Printf.fprintf oc "{\n  \"grid\": \"%s\",\n  %s,\n  \"runs\": [\n%s\n  ]\n}\n"
    name (meta_json ())
    (String.concat ",\n" (List.map entry results));
  close_out oc;
  Printf.printf "(written to %s)\n" path

let astar_reference_grid =
  [ (2, 60); (2, 240); (4, 60); (4, 240); (6, 30); (6, 60) ]

let astar_smoke_grid = [ (2, 20); (3, 15); (4, 10) ]

let run_astar () = run_astar_grid ~name:"reference" astar_reference_grid
let run_astar_smoke () = run_astar_grid ~name:"smoke" astar_smoke_grid

(* --- robustness: drift injection, detection, replanning ----------------------- *)

let robust_streams =
  [
    ("SS", Workload.Arrivals.slow_stable);
    ("SU", Workload.Arrivals.slow_unstable);
    ("FS", Workload.Arrivals.fast_stable);
    ("FU", Workload.Arrivals.fast_unstable);
  ]

(* Each stream is degraded by the canonical drifted scenario (arrival rates
   x2 from mid-horizon, true costs 2x the calibrated model) and maintained
   three ways: ADAPT replaying its stale cyclic schedule (rescue-flushing
   on constraint violations), the monitored replanner of Robust.Replan,
   and ONLINE given the true costs as an adaptive reference point. *)
let run_robust_grid ~name ~costs ~limit ~horizon ~t0 () =
  section
    (Printf.sprintf
       "Robustness (%s grid) — static ADAPT vs replanning ADAPT vs ONLINE \
        under drift"
       name);
  Printf.printf
    "drift: arrival rates x2 from t=%d, true costs 2x the model; C = %.0f, \
     T0 = %d\n"
    ((horizon / 2) + 1)
    limit t0;
  let n = Array.length costs in
  let eval (label, stream) =
    let arrivals =
      Workload.Arrivals.generate ~seed:(base_seed + 17) ~horizon
        (Array.init n (fun i ->
             if i < 2 then stream else Workload.Arrivals.Constant 0))
    in
    let model = Abivm.Spec.make ~costs ~limit ~arrivals in
    let sc = Robust.Inject.drifted model in
    let actual = sc.Robust.Inject.actual in
    let static = Robust.Replan.static_adapt ~model ~actual ~t0 in
    let static_cost = Abivm.Plan.cost actual static.Abivm.Adapt.plan in
    let re = Robust.Replan.run ~model ~actual ~t0 () in
    let online_cost = Abivm.Plan.cost actual (Abivm.Online.plan actual) in
    (label, static_cost, static.Abivm.Adapt.rescues, re, online_cost)
  in
  (* The four streams are independent scenarios, so fan the evaluation out
     across the pool; each closure touches only its own spec/replanner
     state, and [map] keeps the results in stream order. *)
  let results =
    Parallel.Pool.with_pool ~domains:(fanout_domains ()) (fun pool ->
        Array.to_list
          (Parallel.Pool.map pool eval (Array.of_list robust_streams)))
  in
  emit
    ~name:("robust_" ^ name)
    ~aligns:
      (Util.Tablefmt.Left :: List.init 7 (fun _ -> Util.Tablefmt.Right))
    ~header:
      [ "stream"; "ADAPT static"; "rescues"; "ADAPT replan"; "rescues";
        "replans"; "drift peak"; "ONLINE (true costs)" ]
    (List.map
       (fun (label, static_cost, static_rescues,
             (re : Robust.Replan.result), online_cost) ->
         [
           label;
           fcell ~decimals:0 static_cost;
           string_of_int static_rescues;
           fcell ~decimals:0 re.Robust.Replan.cost;
           string_of_int re.Robust.Replan.rescues;
           string_of_int re.Robust.Replan.replans;
           fcell ~decimals:2 re.Robust.Replan.drift_peak;
           fcell ~decimals:0 online_cost;
         ])
       results);
  (* Machine-readable copy for regression tracking across PRs. *)
  let path = "BENCH_robust.json" in
  let oc = open_out path in
  let entry (label, static_cost, static_rescues,
             (re : Robust.Replan.result), online_cost) =
    Printf.sprintf
      "    { \"stream\": %S, \"static_cost\": %.6f, \"static_rescues\": %d, \
       \"replan_cost\": %.6f, \"replan_rescues\": %d, \"replans\": %d, \
       \"drift_peak\": %.4f, \"online_cost\": %.6f }"
      label static_cost static_rescues re.Robust.Replan.cost
      re.Robust.Replan.rescues re.Robust.Replan.replans
      re.Robust.Replan.drift_peak online_cost
  in
  Printf.fprintf oc
    "{\n  \"grid\": \"%s\",\n  %s,\n  \"horizon\": %d,\n  \"t0\": %d,\n  \
     \"runs\": [\n%s\n  ]\n}\n"
    name (meta_json ()) horizon t0
    (String.concat ",\n" (List.map entry results));
  close_out oc;
  Printf.printf "(written to %s)\n" path;
  print_endline
    "shape check: replanning ADAPT should match or beat static ADAPT with \
     fewer rescue flushes on every stream"

let run_robust () =
  let limit = fig6_limit () *. 20.0 /. 12.0 in
  run_robust_grid ~name:"reference" ~costs:(paper_costs ()) ~limit
    ~horizon:1000 ~t0:500 ()

let run_robust_smoke () =
  let costs =
    [| Cost.Func.plateau ~a:1.0 ~cap:6.0; Cost.Func.affine ~a:1.0 ~b:2.0 |]
  in
  run_robust_grid ~name:"smoke" ~costs ~limit:10.0 ~horizon:60 ~t0:20 ()

(* --- durability: WAL + checkpoint overhead, recovery time --------------------- *)

let rec rmtree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun entry -> rmtree (Filename.concat path entry))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let durable_scratch = "_durable_bench"

(* The SS-workload scenario shared by the baseline and every durability
   configuration: a synthetic equi-join view maintained under the ONLINE
   plan.  Durability may slow the run down but must never change it, so
   the grid checks every configuration's engine cost bit-for-bit against
   the WAL-off baseline. *)
let durable_env ~rows ~join_domain ~horizon =
  let seed = base_seed + 23 in
  let arrivals =
    Workload.Arrivals.generate ~seed:(seed + 2) ~horizon
      [| Workload.Arrivals.slow_stable; Workload.Arrivals.slow_stable |]
  in
  let costs =
    [| Cost.Func.affine ~a:1.0 ~b:5.0; Cost.Func.affine ~a:1.0 ~b:5.0 |]
  in
  let spec = Abivm.Spec.make ~costs ~limit:60.0 ~arrivals in
  let plan = Abivm.Online.plan spec in
  let fresh () =
    let db =
      Tpcr.Synth.generate ~seed ~r_rows:rows ~s_rows:rows ~join_domain ()
    in
    let m =
      Ivm.Maintainer.create ~meter:db.Tpcr.Synth.meter (Tpcr.Synth.join_view db)
    in
    Relation.Meter.reset db.Tpcr.Synth.meter;
    (m, Tpcr.Synth.insert_feeds ~seed:(seed + 1) db)
  in
  let view_of tables =
    Ivm.Viewdef.make ~name:"r_join_s" ~tables
      ~join:
        [ { Ivm.Viewdef.left = 0; left_col = "jk"; right = 1; right_col = "jk" } ]
      ~aggs:[ Relation.Agg.count "pairs" ]
      ()
  in
  { Durable.Exec.fresh; view_of; spec; plan; params = [] }

let durable_sync_label = function
  | Durable.Wal.Always -> "always"
  | Durable.Wal.Never -> "never"
  | Durable.Wal.Interval n -> Printf.sprintf "interval:%d" n

(* (label, segment_bytes, ckpt_actions, sync) *)
let durable_configs =
  [
    ("fsync-always", 64 * 1024, 16, Durable.Wal.Always);
    ("group-commit-32", 256 * 1024, 64, Durable.Wal.Interval 32);
    ("no-fsync", 256 * 1024, 64, Durable.Wal.Never);
    ("big-segments", 1024 * 1024, 256, Durable.Wal.Interval 32);
  ]

let time_best ~repeat f =
  let best = ref infinity and out = ref None in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    let v = f () in
    let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    if wall_ms < !best then best := wall_ms;
    out := Some v
  done;
  (Option.get !out, !best)

let run_durable_grid ~name ~rows ~join_domain ~horizon ~repeat () =
  section
    (Printf.sprintf
       "Durability (%s grid) — steady-state WAL/checkpoint overhead and \
        recovery time vs the WAL-off baseline"
       name);
  let env = durable_env ~rows ~join_domain ~horizon in
  let baseline () =
    let m, feeds = env.Durable.Exec.fresh () in
    Bridge.Runner.run_plan
      (Bridge.Runner.engine ~maintainer:m ~feeds)
      env.Durable.Exec.spec env.Durable.Exec.plan
  in
  let report, baseline_ms = time_best ~repeat baseline in
  let baseline_cost =
    Option.value ~default:Float.nan report.Abivm.Report.cost_units
  in
  Printf.printf
    "SS workload, %d rows/table, T = %d; WAL-off baseline: %.1f ms, %.2f \
     cost units (best of %d)\n"
    rows horizon baseline_ms baseline_cost repeat;
  rmtree durable_scratch;
  Unix.mkdir durable_scratch 0o755;
  let results =
    List.map
      (fun (label, segment_bytes, ckpt_actions, sync) ->
        let counter = ref 0 in
        let run_once () =
          incr counter;
          let dir =
            Filename.concat durable_scratch
              (Printf.sprintf "%s-%s-%d" name label !counter)
          in
          rmtree dir;
          let config =
            {
              (Durable.Exec.default_config ~dir) with
              Durable.Exec.segment_bytes;
              ckpt_actions;
              sync;
            }
          in
          (config, Durable.Exec.run config env)
        in
        let (config, outcome), wall_ms = time_best ~repeat run_once in
        (* Recovery: reopen the finished run from disk, restore the latest
           checkpoint, replay the WAL tail, deep-check the view. *)
        let (), recovery_ms =
          time_best ~repeat:1 (fun () ->
              match Durable.Exec.verify config env with
              | Ok _ -> ()
              | Error e -> failwith ("durable grid: verify: " ^ e))
        in
        let overhead_pct = 100.0 *. (wall_ms -. baseline_ms) /. baseline_ms in
        let cost_match =
          Int64.bits_of_float outcome.Durable.Exec.total_cost
          = Int64.bits_of_float baseline_cost
        in
        ( label, segment_bytes, ckpt_actions, sync, wall_ms, overhead_pct,
          recovery_ms, outcome, cost_match ))
      durable_configs
  in
  emit
    ~name:("durable_" ^ name)
    ~aligns:
      (Util.Tablefmt.Left :: Util.Tablefmt.Left
      :: List.init 7 (fun _ -> Util.Tablefmt.Right))
    ~header:
      [ "config"; "sync"; "seg KiB"; "ckpt every"; "wall (ms)"; "overhead %";
        "recovery (ms)"; "wal records"; "cost = baseline" ]
    (List.map
       (fun (label, segment_bytes, ckpt_actions, sync, wall_ms, overhead_pct,
             recovery_ms, (o : Durable.Exec.outcome), cost_match) ->
         [
           label;
           durable_sync_label sync;
           string_of_int (segment_bytes / 1024);
           string_of_int ckpt_actions;
           fcell ~decimals:1 wall_ms;
           fcell ~decimals:1 overhead_pct;
           fcell ~decimals:1 recovery_ms;
           string_of_int o.Durable.Exec.lsn;
           string_of_bool cost_match;
         ])
       results);
  (* Machine-readable copy for regression tracking across PRs. *)
  let path = "BENCH_durable.json" in
  let oc = open_out path in
  let entry (label, segment_bytes, ckpt_actions, sync, wall_ms, overhead_pct,
             recovery_ms, (o : Durable.Exec.outcome), cost_match) =
    Printf.sprintf
      "    { \"config\": %S, \"sync\": %S, \"segment_bytes\": %d, \
       \"ckpt_actions\": %d, \"wall_ms\": %.3f, \"overhead_pct\": %.2f, \
       \"recovery_ms\": %.3f, \"wal_records\": %d, \"checkpoints\": %d, \
       \"cost_units\": %.6f, \"cost_matches_baseline\": %b }"
      label (durable_sync_label sync) segment_bytes ckpt_actions wall_ms
      overhead_pct recovery_ms o.Durable.Exec.lsn o.Durable.Exec.checkpoints
      o.Durable.Exec.total_cost cost_match
  in
  Printf.fprintf oc
    "{\n  \"grid\": \"%s\",\n  %s,\n  \"rows\": %d,\n  \"horizon\": %d,\n  \
     \"baseline_wall_ms\": %.3f,\n  \"baseline_cost_units\": %.6f,\n  \
     \"runs\": [\n%s\n  ]\n}\n"
    name (meta_json ()) rows horizon baseline_ms baseline_cost
    (String.concat ",\n" (List.map entry results));
  close_out oc;
  Printf.printf "(written to %s)\n" path;
  let best_label, _, _, _, _, best_overhead, _, _, _ =
    List.fold_left
      (fun (( _, _, _, _, _, acc_overhead, _, _, _ ) as acc) candidate ->
        let _, _, _, _, _, overhead, _, _, _ = candidate in
        if overhead < acc_overhead then candidate else acc)
      (List.hd results) (List.tl results)
  in
  Printf.printf
    "shape check: every config's engine cost must equal the baseline \
     bit-for-bit, and the best config (%s, %.1f%% overhead) should stay \
     within the 25%% steady-state budget\n"
    best_label best_overhead;
  rmtree durable_scratch

let run_durable () =
  run_durable_grid ~name:"reference" ~rows:2500 ~join_domain:25 ~horizon:1000 ~repeat:3 ()

let run_durable_smoke () =
  run_durable_grid ~name:"smoke" ~rows:250 ~join_domain:10 ~horizon:40 ~repeat:1 ()

(* --- bechamel micro-benchmarks ----------------------------------------------- *)

let run_micro () =
  section "Micro-benchmarks (bechamel; one Test.make per figure kernel)";
  let open Bechamel in
  let limit = fig6_limit () in
  let spec200 = uniform_spec ~limit ~horizon:200 in
  let db2 = Tpcr.Synth.generate ~seed:3 ~r_rows:5_000 ~s_rows:5_000 () in
  let m2 = Ivm.Maintainer.create ~meter:db2.Tpcr.Synth.meter (Tpcr.Synth.join_view db2) in
  let feeds2 = Tpcr.Synth.insert_feeds ~seed:4 db2 in
  let tests =
    [
      Test.make ~name:"fig1/maintain-batch-100 (engine kernel)"
        (Staged.stage (fun () ->
             for _ = 1 to 100 do
               Ivm.Maintainer.on_arrive m2 1 (feeds2.Tpcr.Updates.next 1)
             done;
             ignore (Ivm.Maintainer.process m2 1 100)));
      Test.make ~name:"fig5/naive-plan-T200"
        (Staged.stage (fun () -> ignore (Abivm.Naive.plan spec200)));
      Test.make ~name:"fig6/astar-T200"
        (Staged.stage (fun () -> ignore (Abivm.Astar.solve spec200)));
      Test.make ~name:"fig6/online-T200"
        (Staged.stage (fun () -> ignore (Abivm.Online.plan spec200)));
      Test.make ~name:"fig7/online-bursty-T200"
        (Staged.stage
           (let arrivals =
              Workload.Arrivals.generate ~seed:6 ~horizon:200
                [| Workload.Arrivals.fast_unstable; Workload.Arrivals.fast_unstable;
                   Workload.Arrivals.Constant 0; Workload.Arrivals.Constant 0 |]
            in
            let spec = Abivm.Spec.make ~costs:(paper_costs ()) ~limit ~arrivals in
            fun () -> ignore (Abivm.Online.plan spec)));
      Test.make ~name:"tightness/exact-dp"
        (Staged.stage (fun () ->
             let f = Cost.Func.step_tightness ~eps:0.5 ~limit:10.0 in
             let spec =
               Abivm.Spec.make ~costs:[| f |] ~limit:10.0
                 ~arrivals:(Array.make 4 [| 5 |])
             in
             ignore (Abivm.Exact.solve spec)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun test ->
      List.iter
        (fun (name, ols) ->
          let nanos =
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> est
            | Some _ | None -> Float.nan
          in
          Printf.printf "  %-45s %12.0f ns/run\n" name nanos)
        (benchmark test))
    tests

(* --- columnar engine: boxed vs vectorized --------------------------------- *)

(* Head-to-head of the two engine paths on the kernels the columnar redesign
   targets: (1) scan + predicate, Ra.eval_boxed with the row compiler vs
   draining Ra.cursor with the unboxed filter kernels; (2) delta
   application, the pre-columnar row-at-a-time expand loop (boxed hash of
   the delta keys probed once per materialized scan row) vs the maintainer's
   vectorized scan_batches/Ihash probe over the raw int column.  Both sides
   of each pair produce the same row counts; the JSON records the speedups
   the acceptance bar checks (>= 3x). *)

(* Join keys span rows/4 distinct values (~4 partner rows per key), the
   sparse-probe regime delta application runs in. *)
let columnar_key_domain rows = max 1 (rows / 4)

let columnar_table ~rows =
  let open Relation in
  let schema =
    Schema.make
      [ ("k", Datatype.TInt); ("v", Datatype.TFloat); ("tag", Datatype.TString) ]
  in
  let t = Table.create ~name:"col" ~schema () in
  let st = Random.State.make [| 0xBA7C; rows |] in
  let domain = columnar_key_domain rows in
  for i = 0 to rows - 1 do
    let k = Random.State.int st domain in
    let v =
      if i mod 97 = 0 then Value.Null
      else Value.Float (float_of_int (Random.State.int st 500))
    in
    ignore
      (Table.insert t
         (Tuple.make
            [ Value.Int k; v; Value.Str (if k land 1 = 0 then "even" else "odd") ]))
  done;
  t

let time_ms f =
  (* settle the heap first: the boxed kernels allocate heavily, and major
     GC debt from one measurement would otherwise bleed into the next *)
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000.0 *. (Unix.gettimeofday () -. t0))

let run_columnar_grid ~name ~rows ~deltas ~repeat () =
  let open Relation in
  section
    (Printf.sprintf
       "Columnar engine: boxed vs vectorized (%s grid; %d rows, %d deltas, \
        repeat %d)"
       name rows deltas repeat);
  let t = columnar_table ~rows in
  (* -- scan + predicate: a kernel-eligible conjunction ---------------------- *)
  let pred =
    (* ~40% of keys, then ~80% of those on v: selective but not degenerate *)
    Expr.(
      And
        ( Lt (col "k", int (2 * columnar_key_domain rows / 5)),
          Ge (col "v", float 100.0) ))
  in
  let plan = Ra.select pred (Ra.scan t) in
  let repeat_count f =
    let n = ref 0 in
    for _ = 1 to repeat do
      n := f ()
    done;
    !n
  in
  let boxed_rows, boxed_scan_ms =
    time_ms (fun () -> repeat_count (fun () -> List.length (Ra.eval_boxed plan)))
  in
  let vec_rows, vec_scan_ms =
    time_ms (fun () ->
        repeat_count (fun () ->
            let c = Ra.cursor plan in
            let n = ref 0 in
            let rec loop () =
              match c () with
              | None -> !n
              | Some b ->
                  n := !n + b.Batch.n_sel;
                  loop ()
            in
            loop ()))
  in
  if boxed_rows <> vec_rows then
    failwith
      (Printf.sprintf "columnar bench: scan row mismatch (%d boxed vs %d vec)"
         boxed_rows vec_rows);
  let scan_speedup = boxed_scan_ms /. vec_scan_ms in
  (* -- delta application ---------------------------------------------------- *)
  (* Delta keys hitting ~deltas/1000 of the key domain, as the maintainer
     sees when a batch of updates joins an unindexed partner table. *)
  let st = Random.State.make [| 0xDE17A; deltas |] in
  let domain = columnar_key_domain rows in
  let delta_keys = Array.init deltas (fun _ -> Random.State.int st domain) in
  let boxed_matches, boxed_delta_ms =
    time_ms (fun () ->
        repeat_count (fun () ->
            (* the pre-columnar expand loop: boxed Value hash of the delta
               keys, probed once per scanned (materialized) row *)
            let h = Hashtbl.create (Array.length delta_keys) in
            Array.iter
              (fun k ->
                let v = Value.Int k in
                Hashtbl.replace h v (1 + Option.value ~default:0 (Hashtbl.find_opt h v)))
              delta_keys;
            let n = ref 0 in
            Table.scan t (fun _ tup ->
                match Hashtbl.find_opt h (Tuple.get tup 0) with
                | Some c -> n := !n + c
                | None -> ());
            !n))
  in
  let vec_matches, vec_delta_ms =
    time_ms (fun () ->
        repeat_count (fun () ->
            (* the maintainer's vectorized expand: unboxed Ihash probe over
               the raw int column, partner tuple materialized on match *)
            let h = Ihash.create (Array.length delta_keys) in
            Array.iter (fun k -> Ihash.add h k 0) delta_keys;
            let n = ref 0 in
            Table.scan_batches t (fun b ->
                let col = b.Batch.cols.(0) in
                let data = Column.int_data col and valid = Column.validity col in
                let base = b.Batch.base in
                for s = 0 to b.Batch.n_sel - 1 do
                  let r = Array.unsafe_get b.Batch.sel s in
                  let abs = base + r in
                  if Column.bit valid abs then begin
                    let cell =
                      ref (Ihash.first h (Bigarray.Array1.unsafe_get data abs))
                    in
                    while !cell >= 0 do
                      ignore (Batch.tuple b r);
                      incr n;
                      cell := Ihash.next_cell h !cell
                    done
                  end
                done);
            !n))
  in
  if boxed_matches <> vec_matches then
    failwith
      (Printf.sprintf "columnar bench: delta match mismatch (%d boxed vs %d vec)"
         boxed_matches vec_matches);
  let delta_speedup = boxed_delta_ms /. vec_delta_ms in
  emit ~name:("columnar_" ^ name)
    ~aligns:
      [ Util.Tablefmt.Left; Util.Tablefmt.Right; Util.Tablefmt.Right;
        Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "kernel"; "boxed (ms)"; "vectorized (ms)"; "speedup"; "rows out" ]
    [
      [
        "scan+predicate"; fcell ~decimals:2 boxed_scan_ms;
        fcell ~decimals:2 vec_scan_ms; fcell ~decimals:2 scan_speedup;
        string_of_int vec_rows;
      ];
      [
        "delta-apply"; fcell ~decimals:2 boxed_delta_ms;
        fcell ~decimals:2 vec_delta_ms; fcell ~decimals:2 delta_speedup;
        string_of_int vec_matches;
      ];
    ];
  let path = "BENCH_columnar.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"grid\": \"%s\",\n  %s,\n  \"rows\": %d,\n  \"deltas\": %d,\n  \
     \"repeat\": %d,\n  \"runs\": [\n\
    \    { \"kernel\": \"scan_predicate\", \"boxed_ms\": %.3f, \
     \"vectorized_ms\": %.3f, \"speedup\": %.3f, \"rows_out\": %d },\n\
    \    { \"kernel\": \"delta_apply\", \"boxed_ms\": %.3f, \
     \"vectorized_ms\": %.3f, \"speedup\": %.3f, \"rows_out\": %d }\n\
    \  ]\n}\n"
    name (meta_json ()) rows deltas repeat boxed_scan_ms vec_scan_ms
    scan_speedup vec_rows boxed_delta_ms vec_delta_ms delta_speedup vec_matches;
  close_out oc;
  Printf.printf "(written to %s)\n" path;
  Printf.printf
    "shape check: both kernels must report identical row counts across \
     paths, and the vectorized side should clear the 3x acceptance bar \
     (measured: scan %.1fx, delta %.1fx)\n"
    scan_speedup delta_speedup

let run_columnar () =
  run_columnar_grid ~name:"reference" ~rows:400_000 ~deltas:2_000 ~repeat:3 ()

let run_columnar_smoke () =
  run_columnar_grid ~name:"smoke" ~rows:80_000 ~deltas:600 ~repeat:1 ()

(* --- serve: shared SLO scheduler vs independent per-tenant ONLINE ---------- *)

(* Each tenant runs the §4.3 ONLINE controller as an SLO over its own
   engine either way; the question the table answers is what the shared
   scheduler's cross-tenant co-flush coordination buys.  "independent"
   disables coordination (every tenant flushes alone, full price);
   "shared" lets nearly-due tenants piggyback on a forced flush and
   prices each table's combined work with the multiview shared-setup
   discount.  The shared scheduler must still meet every tenant's
   constraint — the worst violation rate may not regress — at an
   aggregate charged cost no higher than the independent runs'. *)
let rec bench_rmtree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun entry -> bench_rmtree (Filename.concat path entry))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let run_serve_grid ~name ~tenants ~rows ~horizon ~limit_factor () =
  section
    (Printf.sprintf
       "Serve (%s grid) — shared SLO scheduler vs independent per-tenant \
        ONLINE (%d tenants, %d rows, horizon %d)"
       name tenants rows horizon);
  let tenant_cfgs =
    List.init tenants (fun i ->
        {
          Serve.Tenant.name = Printf.sprintf "t%d" i;
          seed = base_seed + (10 * i);
          rows;
          horizon;
          limit_factor;
          streams = [ "ss"; "ss" ];
          order = Ivm.Viewdef.First_order;
          sync = None;
        })
  in
  let run_mode ~coordinate =
    let root =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "abivm-bench-serve-%d-%s-%b" (Unix.getpid ()) name
           coordinate)
    in
    bench_rmtree root;
    let config =
      {
        Serve.Service.default_config with
        admission =
          {
            Serve.Admission.max_active = tenants;
            max_queued = tenants;
            max_delta_entries = max_int;
          };
        coordinate;
        discount_factor = 0.8;
      }
    in
    let svc = Serve.Service.create ~root config in
    List.iter
      (fun cfg ->
        match Serve.Service.register svc cfg with
        | Ok Serve.Admission.Admit -> ()
        | Ok d ->
            Printf.eprintf "FAIL: tenant %s not admitted (%s)\n"
              cfg.Serve.Tenant.name
              (Serve.Admission.describe d);
            exit 1
        | Error e ->
            Printf.eprintf "FAIL: tenant %s: %s\n" cfg.Serve.Tenant.name e;
            exit 1)
      tenant_cfgs;
    let t0 = Unix.gettimeofday () in
    let outcome = Serve.Service.run svc in
    let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    bench_rmtree root;
    List.iter
      (fun (t : Serve.Service.tenant_outcome) ->
        if not t.Serve.Service.consistent then begin
          Printf.eprintf "FAIL: tenant %s finished inconsistent\n"
            t.Serve.Service.tenant;
          exit 1
        end)
      outcome.Serve.Service.tenants;
    (outcome, wall_ms)
  in
  let indep, indep_ms = run_mode ~coordinate:false in
  let shared, shared_ms = run_mode ~coordinate:true in
  let row label (o : Serve.Service.outcome) wall_ms =
    [
      label;
      fcell ~decimals:2 o.Serve.Service.aggregate_charged;
      fcell ~decimals:2 o.Serve.Service.aggregate_undiscounted;
      string_of_int o.Serve.Service.co_flushes;
      fcell ~decimals:4 o.Serve.Service.worst_violation_rate;
      fcell ~decimals:1 wall_ms;
    ]
  in
  emit
    ~name:("serve_" ^ name)
    ~aligns:
      [ Util.Tablefmt.Left; Right; Right; Right; Right; Right ]
    ~header:
      [ "scheduler"; "aggregate charged"; "undiscounted"; "co-flush joins";
        "worst SLO violation rate"; "wall (ms)" ]
    [ row "independent ONLINE" indep indep_ms;
      row "shared (co-flush)" shared shared_ms ];
  let savings =
    100.0
    *. (1.0
       -. (shared.Serve.Service.aggregate_charged
          /. Float.max 1e-9 indep.Serve.Service.aggregate_charged))
  in
  Printf.printf
    "shared scheduler: %.1f%% aggregate cost vs independent, worst \
     violation rate %.4f (independent %.4f)\n"
    (100.0 -. savings)
    shared.Serve.Service.worst_violation_rate
    indep.Serve.Service.worst_violation_rate;
  if
    shared.Serve.Service.aggregate_charged
    > indep.Serve.Service.aggregate_charged +. 1e-6
  then begin
    Printf.eprintf
      "FAIL: shared scheduler charged more than independent ONLINE\n";
    exit 1
  end;
  if
    shared.Serve.Service.worst_violation_rate
    > indep.Serve.Service.worst_violation_rate +. 1e-12
  then begin
    Printf.eprintf
      "FAIL: shared scheduler regressed the worst tenant's SLO\n";
    exit 1
  end;
  (* Machine-readable copy for regression tracking across PRs. *)
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  let mode_json label (o : Serve.Service.outcome) wall_ms =
    Printf.sprintf
      "  \"%s\": {\n    \"aggregate_charged\": %.6f,\n    \
       \"aggregate_undiscounted\": %.6f,\n    \"co_flushes\": %d,\n    \
       \"worst_violation_rate\": %.6f,\n    \"rounds\": %d,\n    \
       \"wall_ms\": %.3f,\n    \"tenants\": [\n%s\n    ]\n  }"
      label o.Serve.Service.aggregate_charged
      o.Serve.Service.aggregate_undiscounted o.Serve.Service.co_flushes
      o.Serve.Service.worst_violation_rate o.Serve.Service.rounds wall_ms
      (String.concat ",\n"
         (List.map
            (fun (t : Serve.Service.tenant_outcome) ->
              Printf.sprintf
                "      { \"tenant\": %S, \"metered_cost\": %.6f, \
                 \"charged_cost\": %.6f, \"violations\": %d, \
                 \"violation_rate\": %.6f, \"sheds\": %d, \"reanchors\": \
                 %d, \"consistent\": %b }"
                t.Serve.Service.tenant t.Serve.Service.metered_cost
                t.Serve.Service.charged_cost t.Serve.Service.violations
                t.Serve.Service.violation_rate t.Serve.Service.sheds
                t.Serve.Service.reanchors t.Serve.Service.consistent)
            o.Serve.Service.tenants))
  in
  Printf.fprintf oc
    "{\n  \"grid\": \"%s\",\n  %s,\n  \"tenants\": %d,\n  \"rows\": %d,\n  \
     \"horizon\": %d,\n  \"limit_factor\": %.2f,\n%s,\n%s\n}\n"
    name (meta_json ()) tenants rows horizon limit_factor
    (mode_json "independent" indep indep_ms)
    (mode_json "shared" shared shared_ms);
  close_out oc;
  Printf.printf "(written to %s)\n" path

let run_serve () =
  run_serve_grid ~name:"reference" ~tenants:6 ~rows:120 ~horizon:60
    ~limit_factor:1.5 ()

let run_serve_smoke () =
  run_serve_grid ~name:"smoke" ~tenants:4 ~rows:60 ~horizon:25
    ~limit_factor:1.2 ()

(* --- serve-io: group-commit window + off-thread checkpoints ----------------- *)

(* The serve-path I/O experiment (DESIGN.md §15).  Three claims, each a
   hard gate (exit 1 on regression):

   1. Under the shared group-commit window a scheduler round costs ONE
      data fsync — the window close — however many tenants committed,
      where per-tenant [Always] WALs pay one fsync per commit.
   2. That converts into wall-clock throughput: the grouped service
      finishes the same workload at least 2x faster than per-tenant
      [Always] WALs, at equal recovered state — both roots are recovered
      from disk after the timed runs and every outcome bit (per-tenant
      costs, aggregates, discounts, round count) must agree between the
      two layouts, live and recovered alike.
   3. Off-thread checkpoints ([Durable.Exec] with a pool) stall the
      maintenance thread no more than synchronous ones do
      ([durable.ckpt_stall_ms]), with the total cost bit-identical. *)

let telemetry_diff f =
  let owned = not (Telemetry.enabled ()) in
  if owned then Telemetry.enable ();
  let before = Telemetry.snapshot () in
  let v = f () in
  let diff = Telemetry.Metrics.diff (Telemetry.snapshot ()) before in
  if owned then Telemetry.disable ();
  (v, diff)

let serveio_digest (o : Serve.Service.outcome) =
  String.concat ","
    (Printf.sprintf "%Lx" (Int64.bits_of_float o.Serve.Service.aggregate_charged)
    :: Printf.sprintf "%Lx"
         (Int64.bits_of_float o.Serve.Service.aggregate_undiscounted)
    :: string_of_int o.Serve.Service.co_flushes
    :: string_of_int o.Serve.Service.rounds
    :: List.concat_map
         (fun (t : Serve.Service.tenant_outcome) ->
           [
             t.Serve.Service.tenant;
             string_of_int t.Serve.Service.steps;
             Printf.sprintf "%Lx" (Int64.bits_of_float t.Serve.Service.metered_cost);
             Printf.sprintf "%Lx" (Int64.bits_of_float t.Serve.Service.charged_cost);
             string_of_int t.Serve.Service.violations;
           ])
         o.Serve.Service.tenants)

let run_serveio_grid ~name ~tenants ~rows ~horizon ~limit_factor ~repeat
    ~ckpt_rows ~ckpt_horizon () =
  section
    (Printf.sprintf
       "Serve I/O (%s grid) — shared group-commit window vs per-tenant \
        Always WALs (%d tenants, %d rows, horizon %d), plus off-thread \
        checkpoint stall"
       name tenants rows horizon);
  let tenant_cfgs =
    List.init tenants (fun i ->
        {
          Serve.Tenant.name = Printf.sprintf "t%d" i;
          seed = base_seed + (10 * i);
          rows;
          horizon;
          limit_factor;
          streams = [ "ss"; "ss" ];
          order = Ivm.Viewdef.First_order;
          sync = None;
        })
  in
  (* One timed run of the fleet under a WAL layout; best-of-[repeat].
     Only [Serve.Service.run] is timed — tenant admission (synthetic DB
     generation) is identical across layouts and not the claim under
     test.  The root is left on disk so the caller can recover it. *)
  let run_mode ~label ~wal_mode ~scheduler =
    let root =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "abivm-bench-serveio-%d-%s-%s" (Unix.getpid ()) name
           label)
    in
    let best = ref infinity and out = ref None in
    for _ = 1 to repeat do
      bench_rmtree root;
      let config =
        {
          Serve.Service.default_config with
          admission =
            {
              Serve.Admission.max_active = tenants;
              max_queued = tenants;
              max_delta_entries = max_int;
            };
          (* Coordination is the serve grid's subject; here it would only
             add co-flush journal manifest writes to both layouts and
             blur the fsync accounting under test. *)
          coordinate = false;
          discount_factor = 0.0;
          sync = Durable.Wal.Always;
          wal_mode;
          scheduler;
        }
      in
      let svc = Serve.Service.create ~root config in
      List.iter
        (fun cfg ->
          match Serve.Service.register svc cfg with
          | Ok Serve.Admission.Admit -> ()
          | Ok d ->
              Printf.eprintf "FAIL: serveio: tenant %s not admitted (%s)\n"
                cfg.Serve.Tenant.name
                (Serve.Admission.describe d);
              exit 1
          | Error e ->
              Printf.eprintf "FAIL: serveio: tenant %s: %s\n"
                cfg.Serve.Tenant.name e;
              exit 1)
        tenant_cfgs;
      let (outcome, wall_ms), metrics =
        telemetry_diff (fun () ->
            let t0 = Unix.gettimeofday () in
            let o = Serve.Service.run svc in
            (o, 1000.0 *. (Unix.gettimeofday () -. t0)))
      in
      if wall_ms < !best then best := wall_ms;
      out :=
        Some
          ( outcome,
            Serve.Service.rounds svc,
            Serve.Service.idle_rounds svc,
            Serve.Service.window_closes svc,
            Telemetry.Metrics.value metrics "durable.fsyncs" )
    done;
    let outcome, rounds, idle_rounds, window_closes, fsyncs =
      Option.get !out
    in
    (label, root, outcome, rounds, idle_rounds, window_closes, fsyncs, !best)
  in
  let grouped =
    run_mode ~label:"grouped" ~wal_mode:Serve.Service.Grouped
      ~scheduler:Serve.Service.Event
  in
  let private_ =
    run_mode ~label:"private-always" ~wal_mode:Serve.Service.Private
      ~scheduler:Serve.Service.Lockstep
  in
  let recovered_digest (_, root, _, _, _, _, _, _) =
    match Serve.Service.recover ~root () with
    | Error e ->
        Printf.eprintf "FAIL: serveio: recover %s: %s\n" root e;
        exit 1
    | Ok svc -> serveio_digest (Serve.Service.run svc)
  in
  let grouped_rec = recovered_digest grouped in
  let private_rec = recovered_digest private_ in
  let row (label, _, o, rounds, idle, closes, fsyncs, wall_ms) =
    let busy = max 1 (rounds - idle) in
    [
      label;
      string_of_int rounds;
      string_of_int idle;
      string_of_int closes;
      fcell ~decimals:0 fsyncs;
      fcell ~decimals:2 (fsyncs /. float_of_int busy);
      fcell ~decimals:2 o.Serve.Service.aggregate_charged;
      fcell ~decimals:1 wall_ms;
    ]
  in
  emit ~name:("serveio_" ^ name)
    ~aligns:
      [ Util.Tablefmt.Left; Right; Right; Right; Right; Right; Right; Right ]
    ~header:
      [ "wal layout"; "rounds"; "idle"; "window closes"; "fsyncs";
        "fsyncs/busy round"; "aggregate charged"; "wall (ms)" ]
    [ row grouped; row private_ ];
  let ( _, groot, g_out, g_rounds, g_idle, g_closes, g_fsyncs, g_ms ) =
    grouped
  in
  let _, proot, p_out, _, _, _, p_fsyncs, p_ms = private_ in
  let g_busy = max 1 (g_rounds - g_idle) in
  let speedup = p_ms /. Float.max 1e-9 g_ms in
  Printf.printf
    "grouped window: %.0f fsyncs over %d busy rounds (%.2f/round) vs %.0f \
     per-tenant; %.2fx throughput at equal recovered state\n"
    g_fsyncs g_busy
    (g_fsyncs /. float_of_int g_busy)
    p_fsyncs speedup;
  (* Gate 1: one fsync per busy round.  Every busy round closes the
     window exactly once ([sync = Always]); the only uncounted extras
     allowed are the shutdown flush and segment rotation. *)
  let gate_window = g_closes = g_busy && g_fsyncs <= float_of_int (g_closes + 2) in
  if not gate_window then begin
    Printf.eprintf
      "FAIL: serveio: grouped window fsync accounting: %d closes, %d busy \
       rounds, %.0f fsyncs\n"
      g_closes g_busy g_fsyncs;
    exit 1
  end;
  (* Gate 2a: bit-identical outcomes across layouts, live and recovered. *)
  let g_dig = serveio_digest g_out and p_dig = serveio_digest p_out in
  if not (g_dig = p_dig && grouped_rec = g_dig && private_rec = p_dig) then begin
    Printf.eprintf
      "FAIL: serveio: outcome digests diverge (grouped %s / private %s / \
       recovered %s %s)\n"
      g_dig p_dig grouped_rec private_rec;
    exit 1
  end;
  (* Gate 2b: the shared window converts saved fsyncs into throughput. *)
  if speedup < 2.0 then begin
    Printf.eprintf
      "FAIL: serveio: grouped throughput %.2fx < 2x per-tenant Always\n"
      speedup;
    exit 1
  end;
  bench_rmtree groot;
  bench_rmtree proot;
  (* Gate 3: off-thread checkpoints must not stall the maintenance
     thread more than synchronous ones ([Durable.Exec], same workload,
     same checkpoint cadence; stalls best-of-[repeat] to damp noise). *)
  let env = durable_env ~rows:ckpt_rows ~join_domain:25 ~horizon:ckpt_horizon in
  let ckpt_counter = ref 0 in
  let ckpt_run ~label ~pool () =
    incr ckpt_counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "abivm-bench-serveio-ckpt-%d-%s-%s-%d" (Unix.getpid ())
           name label !ckpt_counter)
    in
    bench_rmtree dir;
    let config =
      {
        (Durable.Exec.default_config ~dir) with
        Durable.Exec.ckpt_actions = 8;
        sync = Durable.Wal.Always;
        pool;
      }
    in
    let outcome, metrics = telemetry_diff (fun () -> Durable.Exec.run config env) in
    bench_rmtree dir;
    (outcome, Telemetry.Metrics.value metrics "durable.ckpt_stall_ms")
  in
  let best_stall ~label ~pool =
    let best = ref infinity and out = ref None in
    for _ = 1 to repeat do
      let o, stall = ckpt_run ~label ~pool () in
      if stall < !best then best := stall;
      out := Some o
    done;
    (Option.get !out, !best)
  in
  let sync_out, sync_stall = best_stall ~label:"sync" ~pool:None in
  let async_out, async_stall =
    Parallel.Pool.with_pool ~domains:2 (fun pool ->
        best_stall ~label:"async" ~pool:(Some pool))
  in
  Printf.printf
    "checkpoint stall: %.2f ms sync vs %.2f ms off-thread (%d checkpoints)\n"
    sync_stall async_stall sync_out.Durable.Exec.checkpoints;
  if sync_out.Durable.Exec.checkpoints = 0 then begin
    Printf.eprintf "FAIL: serveio: checkpoint grid wrote no checkpoints\n";
    exit 1
  end;
  if
    Int64.bits_of_float sync_out.Durable.Exec.total_cost
    <> Int64.bits_of_float async_out.Durable.Exec.total_cost
  then begin
    Printf.eprintf
      "FAIL: serveio: off-thread checkpoints changed the total cost\n";
    exit 1
  end;
  if async_stall > (sync_stall *. 1.25) +. 2.0 then begin
    Printf.eprintf
      "FAIL: serveio: off-thread checkpoint stall regressed (%.2f ms vs \
       %.2f ms sync)\n"
      async_stall sync_stall;
    exit 1
  end;
  (* Machine-readable copy for regression tracking across PRs. *)
  let path = "BENCH_serveio.json" in
  let oc = open_out path in
  let mode_json (label, _, o, rounds, idle, closes, fsyncs, wall_ms) digest =
    Printf.sprintf
      "  \"%s\": {\n    \"rounds\": %d,\n    \"idle_rounds\": %d,\n    \
       \"window_closes\": %d,\n    \"fsyncs\": %.0f,\n    \
       \"fsyncs_per_busy_round\": %.4f,\n    \"aggregate_charged\": %.6f,\n    \
       \"wall_ms\": %.3f,\n    \"digest_matches_recovered\": %b\n  }"
      label rounds idle closes fsyncs
      (fsyncs /. float_of_int (max 1 (rounds - idle)))
      o.Serve.Service.aggregate_charged wall_ms
      (serveio_digest o = digest)
  in
  Printf.fprintf oc
    "{\n  \"grid\": \"%s\",\n  %s,\n  \"tenants\": %d,\n  \"rows\": %d,\n  \
     \"horizon\": %d,\n  \"limit_factor\": %.2f,\n%s,\n%s,\n  \
     \"throughput_ratio\": %.4f,\n  \"outcomes_bit_identical\": %b,\n  \
     \"checkpoint\": {\n    \"rows\": %d,\n    \"horizon\": %d,\n    \
     \"checkpoints\": %d,\n    \"sync_stall_ms\": %.3f,\n    \
     \"async_stall_ms\": %.3f,\n    \"cost_bits_equal\": %b\n  }\n}\n"
    name (meta_json ()) tenants rows horizon limit_factor
    (mode_json grouped grouped_rec)
    (mode_json private_ private_rec)
    speedup
    (g_dig = p_dig)
    ckpt_rows ckpt_horizon sync_out.Durable.Exec.checkpoints sync_stall
    async_stall
    (Int64.bits_of_float sync_out.Durable.Exec.total_cost
    = Int64.bits_of_float async_out.Durable.Exec.total_cost);
  close_out oc;
  Printf.printf "(written to %s)\n" path

let run_serveio () =
  run_serveio_grid ~name:"reference" ~tenants:8 ~rows:16 ~horizon:60
    ~limit_factor:1.3 ~repeat:3 ~ckpt_rows:800 ~ckpt_horizon:400 ()

let run_serveio_smoke () =
  run_serveio_grid ~name:"smoke" ~tenants:6 ~rows:12 ~horizon:30
    ~limit_factor:1.2 ~repeat:2 ~ckpt_rows:250 ~ckpt_horizon:160 ()

(* --- ho: first-order vs higher-order maintenance --------------------------- *)

(* The DESIGN.md §13 experiment.  Two questions:

   1. What do materialized delta views do to the engine's batch cost
      curves f_i(k)?  Measured on FO/HO twin synth engines (R indexed on
      the join key, S not), under a uniform and a Zipfian-skewed insert
      stream.  The headline is the ΔR (table 0) curve: under FO a ΔR batch
      scans S once per batch, so f_0(1) starts at the full scan price;
      under HO it becomes one hash probe per tuple into d(V)/d(R) — the
      indexed-probe shape.  The acceptance gate requires HO to beat FO by
      >= 2x at small k there.  On the already-indexed ΔS side the win is a
      flatter slope (the Fit.slope gate), and at large k HO loses its
      lead — per-tuple probing cannot amortize like one shared scan —
      which is exactly the frontier shift the planner must re-learn.

   2. What do the re-derived batch bounds / heuristic do with those
      curves?  A six-table planner grid (both stream shapes plus a scaled
      echo, all measured curves repaired to their subadditive hull)
      compares NAIVE vs LGM(NAIVE) vs A* under both orders, reports the
      per-table batch bounds K_i, and gates on (a) A* with the DP
      heuristic returning bit-identically the uniform-cost (Dijkstra)
      optimum, and (b) exact <= A* <= 2 * exact on an Exact-solvable
      two-table sub-instance.  Any gate failure exits 1. *)

let run_ho_grid ~name ~r_rows ~s_rows ~sizes ~horizon () =
  section
    (Printf.sprintf
       "Higher-order delta views (%s grid; %dx%d rows, batches up to %d) — \
        FO vs HO cost curves and the re-derived planner bounds"
       name r_rows s_rows
       (List.fold_left max 1 sizes));
  let fo = Ivm.Viewdef.First_order and ho = Ivm.Viewdef.Higher_order in
  let mk ~zipf order =
    let db = Tpcr.Synth.generate ~seed:7 ~r_rows ~s_rows () in
    let m =
      Ivm.Maintainer.create ~meter:db.Tpcr.Synth.meter ~order
        (Tpcr.Synth.join_view db)
    in
    let feeds =
      if zipf then Tpcr.Synth.zipf_feeds ~seed:11 db
      else Tpcr.Synth.insert_feeds ~seed:11 db
    in
    (m, feeds)
  in
  let curves ~zipf table =
    Bridge.Calibrate.measure_orders ~make:(mk ~zipf) ~table ~sizes
  in
  let u0 = curves ~zipf:false 0 and u1 = curves ~zipf:false 1 in
  let z0 = curves ~zipf:true 0 and z1 = curves ~zipf:true 1 in
  let get o cs = List.assoc o cs in
  let at k c = List.assoc k c in
  (* -- the measured curves -------------------------------------------------- *)
  emit ~name:("ho_curves_" ^ name)
    ~aligns:
      (Util.Tablefmt.Right
      :: List.map (fun _ -> Util.Tablefmt.Right) [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    ~header:
      [ "k"; "FO dR"; "HO dR"; "FO dS"; "HO dS"; "FO dR zipf"; "HO dR zipf";
        "FO dS zipf"; "HO dS zipf" ]
    (List.map
       (fun k ->
         string_of_int k
         :: List.map
              (fun c -> fcell ~decimals:1 (at k c))
              [ get fo u0; get ho u0; get fo u1; get ho u1; get fo z0;
                get ho z0; get fo z1; get ho z1 ])
       sizes);
  let slope c = Cost.Fit.slope c in
  Printf.printf
    "fitted slopes (cost units per modification): dS %.2f (FO) vs %.2f (HO); \
     zipf dS %.2f (FO) vs %.2f (HO)\n"
    (slope (get fo u1)) (slope (get ho u1)) (slope (get fo z1))
    (slope (get ho z1));
  (* -- the planner grid ----------------------------------------------------- *)
  let upto = 4 * List.fold_left max 1 sizes in
  let repaired nm curve =
    Cost.Func.subadditive_hull ~upto (Bridge.Calibrate.tabulated ~name:nm curve)
  in
  (* Six tables from measured data: both stream shapes for both delta
     sides, plus a scaled echo pair standing in for two smaller tables
     with the same access-path shapes. *)
  let costs_of order =
    [|
      repaired "u_dR" (get order u0);
      repaired "u_dS" (get order u1);
      repaired "z_dR" (get order z0);
      repaired "z_dS" (get order z1);
      Cost.Func.scale 0.5 (repaired "u_dR_half" (get order u0));
      Cost.Func.scale 0.5 (repaired "u_dS_half" (get order u1));
    |]
  in
  let prng = Util.Prng.create ~seed:5 in
  let arrivals =
    Array.init (horizon + 1) (fun _ -> Array.init 6 (fun _ -> Util.Prng.int prng 2))
  in
  (* The response-time constraint is an external SLA: the same C for both
     orders, set from the first-order curves.  Against that fixed C the
     flatter higher-order curves admit far bigger batches — the batch
     bounds K_i the heuristic is re-derived from shift visibly, and
     planning itself nearly degenerates (the constraint stops binding).
     A third configuration re-tightens C proportionally to the HO curves
     so the HO planner is also exercised on a non-trivial instance. *)
  let limit_for costs =
    3.0
    *. Array.fold_left
         (fun acc f -> Float.max acc (Cost.Func.eval f 1))
         0.0 costs
  in
  let limit = limit_for (costs_of fo) in
  let spec_of costs ~limit n_tables horizon' =
    let costs = Array.sub costs 0 n_tables in
    Abivm.Spec.make ~costs ~limit
      ~arrivals:
        (Array.init (horizon' + 1) (fun t ->
             Array.sub arrivals.(min t horizon) 0 n_tables))
  in
  let gate_failures = ref [] in
  let gate what ok detail =
    Printf.printf "gate %-34s %s  (%s)\n" what (if ok then "PASS" else "FAIL")
      detail;
    if not ok then gate_failures := what :: !gate_failures
  in
  let planner_rows = ref [] and planner_json = ref [] in
  List.iter
    (fun (oname, order, limit) ->
      let costs = costs_of order in
      let spec = spec_of costs ~limit 6 horizon in
      let naive_cost = Abivm.Plan.cost spec (Abivm.Naive.plan spec) in
      let lgm_cost =
        Abivm.Plan.cost spec (Abivm.Transforms.make_lgm spec (Abivm.Naive.plan spec))
      in
      let astar = Abivm.Astar.solve spec in
      let dijkstra = Abivm.Astar.solve ~use_heuristic:false spec in
      (* K_i against a horizon long enough that C binds before the
         total-arrivals clamp: the curve-driven shift.  HO raises the
         bound on the probe side (flatter slope) and lowers it on the
         scan side past the crossover where per-tuple probing stops
         amortizing — both directions are the re-derivation at work. *)
      let bounds =
        Abivm.Astar.batch_bounds
          (Abivm.Spec.make ~costs ~limit
             ~arrivals:(Array.init 241 (fun _ -> Array.make 6 1)))
      in
      gate
        (Printf.sprintf "A* heuristic = Dijkstra (%s)" oname)
        (astar.Abivm.Astar.cost = dijkstra.Abivm.Astar.cost)
        (Printf.sprintf "%.2f vs %.2f, %d vs %d expanded" astar.Abivm.Astar.cost
           dijkstra.Abivm.Astar.cost astar.Abivm.Astar.stats.Abivm.Astar.expanded
           dijkstra.Abivm.Astar.stats.Abivm.Astar.expanded);
      (* Exact is feasible on the two-table head of the grid. *)
      let sub = spec_of costs ~limit 2 (min horizon 8) in
      let sub_astar = (Abivm.Astar.solve sub).Abivm.Astar.cost in
      (match Abivm.Exact.solve ~max_expansions:500_000 sub with
      | exception Abivm.Exact.Too_large _ ->
          gate
            (Printf.sprintf "exact <= A* <= 2 exact (%s)" oname)
            false "exact solver exceeded its expansion budget"
      | exact_cost, _ ->
          gate
            (Printf.sprintf "exact <= A* <= 2 exact (%s)" oname)
            (sub_astar >= exact_cost -. 1e-6
            && sub_astar <= (2.0 *. exact_cost) +. 1e-6)
            (Printf.sprintf "exact %.2f, A* %.2f" exact_cost sub_astar));
      planner_rows :=
        [
          oname; fcell ~decimals:1 naive_cost; fcell ~decimals:1 lgm_cost;
          fcell ~decimals:1 astar.Abivm.Astar.cost;
          string_of_int astar.Abivm.Astar.stats.Abivm.Astar.expanded;
          String.concat " "
            (Array.to_list (Array.map string_of_int bounds));
        ]
        :: !planner_rows;
      planner_json :=
        Printf.sprintf
          "    { \"order\": %S, \"naive\": %.3f, \"lgm\": %.3f, \"astar\": \
           %.3f, \"astar_expanded\": %d, \"dijkstra_expanded\": %d, \
           \"batch_bounds\": [%s] }"
          oname naive_cost lgm_cost astar.Abivm.Astar.cost
          astar.Abivm.Astar.stats.Abivm.Astar.expanded
          dijkstra.Abivm.Astar.stats.Abivm.Astar.expanded
          (String.concat ", " (Array.to_list (Array.map string_of_int bounds)))
        :: !planner_json)
    [
      ("first-order", fo, limit);
      ("higher-order", ho, limit);
      ("higher-order tight C", ho, limit_for (costs_of ho));
    ];
  emit ~name:("ho_planner_" ^ name)
    ~aligns:
      [ Util.Tablefmt.Left; Util.Tablefmt.Right; Util.Tablefmt.Right;
        Util.Tablefmt.Right; Util.Tablefmt.Right; Util.Tablefmt.Left ]
    ~header:
      [ "order"; "NAIVE"; "LGM(NAIVE)"; "A*"; "A* expanded"; "batch bounds K_i" ]
    (List.rev !planner_rows);
  (* -- acceptance gates on the engine curves -------------------------------- *)
  let k_small = List.nth sizes 0 and k_mid = List.nth sizes 1 in
  let speedup k = at k (get fo u0) /. at k (get ho u0) in
  gate "HO >= 2x FO on dR at small k"
    (speedup k_small >= 2.0 && speedup k_mid >= 2.0)
    (Printf.sprintf "k=%d: %.1fx, k=%d: %.1fx" k_small (speedup k_small) k_mid
       (speedup k_mid));
  gate "HO dS slope flatter than FO"
    (Cost.Fit.flatter (get ho u1) ~than:(get fo u1))
    (Printf.sprintf "%.2f vs %.2f" (slope (get ho u1)) (slope (get fo u1)));
  (* -- JSON ------------------------------------------------------------------ *)
  let curve_json stream table order curve =
    Printf.sprintf
      "    { \"stream\": %S, \"table\": %d, \"order\": %S, \"slope\": %.4f, \
       \"points\": [%s] }"
      stream table
      (Ivm.Viewdef.order_name order)
      (slope curve)
      (String.concat ", "
         (List.map (fun (k, c) -> Printf.sprintf "[%d, %.3f]" k c) curve))
  in
  let path = "BENCH_ho.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"grid\": %S,\n  %s,\n  \"r_rows\": %d,\n  \"s_rows\": %d,\n  \
     \"curves\": [\n%s\n  ],\n  \"planner\": [\n%s\n  ],\n  \"gates\": { \
     \"ho_speedup_dr_k%d\": %.3f, \"ho_speedup_dr_k%d\": %.3f, \
     \"ho_ds_flatter\": %b, \"failed\": [%s] }\n}\n"
    name (meta_json ()) r_rows s_rows
    (String.concat ",\n"
       (List.concat_map
          (fun (stream, t, cs) ->
            List.map (fun (o, c) -> curve_json stream t o c) cs)
          [
            ("uniform", 0, u0); ("uniform", 1, u1); ("zipf", 0, z0);
            ("zipf", 1, z1);
          ]))
    (String.concat ",\n" (List.rev !planner_json))
    k_small (speedup k_small) k_mid (speedup k_mid)
    (Cost.Fit.flatter (get ho u1) ~than:(get fo u1))
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "%S" s) !gate_failures));
  close_out oc;
  Printf.printf "(written to %s)\n" path;
  Printf.printf
    "headline: materializing d(V)/d(R) turns the dR batch from a scan of S \
     into hash probes — %.1fx cheaper at k=%d — while at k=%d the shared \
     scan catches back up (%.1fx); the planner sees the shift through \
     re-derived batch bounds, and A* with the DP heuristic stays \
     bit-identical to uniform-cost search on every instance\n"
    (speedup k_small) k_small
    (List.fold_left max 1 sizes)
    (let kmax = List.fold_left max 1 sizes in
     at kmax (get fo u0) /. at kmax (get ho u0));
  if !gate_failures <> [] then begin
    Printf.eprintf "ho bench: %d gate(s) failed: %s\n"
      (List.length !gate_failures)
      (String.concat "; " (List.rev !gate_failures));
    exit 1
  end

let run_ho () =
  run_ho_grid ~name:"reference" ~r_rows:400 ~s_rows:400
    ~sizes:[ 1; 8; 64; 256 ] ~horizon:14 ()

let run_ho_smoke () =
  run_ho_grid ~name:"smoke" ~r_rows:160 ~s_rows:160 ~sizes:[ 1; 8; 32 ]
    ~horizon:8 ()

(* --- heavy-light partitioning ---------------------------------------------- *)

(* Skew-aware maintenance on a Zipfian stream: each base relation splits
   into a heavy partition (hot join keys, eager indexed application) and a
   light partition (the tail, batched shared scans), each calibrated to its
   own metered f_i(k); every planner then works the doubled 2n-table spec
   unchanged.  The baseline is the skew-blind planner: same partitioned
   engine, same stream, but planned against one averaged curve per logical
   table, so every batch mixes hot and tail keys and pays the scan.
   Gates: the skew-aware planner's executed cost must beat the blind
   plan's, routing must be content-neutral (uniform and zipf), and the
   layered parallel Exact DP must agree with the sequential solver
   bit-for-bit. *)
let run_partition_grid ~name ~r_rows ~s_rows ~horizon ~sizes ~limit_factor
    ~rates ~exact_horizon () =
  section
    (Printf.sprintf
       "Heavy-light partitioning (%s grid; %dx%d rows, horizon %d) — \
        skew-aware per-partition planning vs single-curve baseline"
       name r_rows s_rows horizon);
  let exponent = 1.1 and seed_cal = 11 and seed_live = 13 in
  let r_rate, s_rate = rates in
  let names = [| "R"; "S" |] in
  (* R is small and indexed (probe-friendly), S is big and unindexed —
     every unpartitioned dR batch pays a full scan of S.  The partitioned
     deployment adds the heavy path's index on S's join column, so hot dR
     keys apply eagerly via probes and only the tail still scans. *)
  let mk ~indexed () =
    let db = Tpcr.Synth.generate ~seed:7 ~r_rows ~s_rows () in
    if indexed then Relation.Table.create_index db.Tpcr.Synth.s "jk";
    Relation.Meter.reset db.Tpcr.Synth.meter;
    db
  in
  let upto = 4 * List.fold_left max 1 sizes in
  let hull nm curve =
    Cost.Func.subadditive_hull ~upto (Bridge.Calibrate.tabulated ~name:nm curve)
  in
  (* -- split calibration: exact sketch over a stream sample ----------------- *)
  let splits =
    let db = mk ~indexed:true () in
    let view = Tpcr.Synth.join_view db in
    let key_of = Partition.Engine.key_of_view view in
    let feeds = Tpcr.Synth.zipf_feeds ~seed:seed_cal ~exponent db in
    Array.init 2 (fun i ->
        let sk = Partition.Sketch.create () in
        for _ = 1 to 1500 do
          match key_of i (feeds.Tpcr.Updates.next i) with
          | Some k -> Partition.Sketch.observe sk k
          | None -> ()
        done;
        Partition.Split.calibrate ~min_share:0.02 sk)
  in
  emit ~name:("partition_splits_" ^ name)
    ~aligns:
      [ Util.Tablefmt.Left; Util.Tablefmt.Right; Util.Tablefmt.Right;
        Util.Tablefmt.Right ]
    ~header:[ "table"; "heavy keys"; "coverage"; "threshold share" ]
    (List.init 2 (fun i ->
         [
           names.(i);
           string_of_int (Partition.Split.heavy_count splits.(i));
           fcell ~decimals:3 (Partition.Split.coverage splits.(i));
           fcell ~decimals:3 (Partition.Split.threshold splits.(i));
         ]));
  (* -- per-partition cost curves (engine with the heavy-path index) --------- *)
  let fresh_engine ~indexed () =
    let db = mk ~indexed () in
    let view = Tpcr.Synth.join_view db in
    let m = Ivm.Maintainer.create ~meter:db.Tpcr.Synth.meter view in
    let e =
      Partition.Engine.create
        ~key_of:(Partition.Engine.key_of_view view)
        ~splits m
    in
    (db, e)
  in
  let part_curves =
    let db, e = fresh_engine ~indexed:true () in
    let feeds = Tpcr.Synth.zipf_feeds ~seed:seed_cal ~exponent db in
    Array.init (Partition.Pspec.count ~n:2) (fun p ->
        let table, cls = Partition.Pspec.logical p in
        Partition.Calibrate.measure_curve e
          ~next:(fun () -> feeds.Tpcr.Updates.next table)
          ~table ~cls ~sizes)
  in
  let costs_part =
    Array.mapi
      (fun p curve -> hull (Partition.Pspec.label ~names p) curve)
      part_curves
  in
  (* -- skew-blind single-curve calibration on the same engine ---------------
     The blind planner sees one averaged curve per logical table: the
     metered cost of draining a FIFO batch of [k] arrivals through the
     partitioned engine (heavy fraction probing, light fraction scanning,
     in whatever mix the zipf stream delivers). *)
  let drain_logical e ~table =
    List.fold_left
      (fun acc cls ->
        let p = Partition.Pspec.index ~table cls in
        let k = Partition.Engine.pending_in e p in
        if k = 0 then acc
        else
          acc
          +. Relation.Meter.cost_units (Partition.Engine.process e ~partition:p k))
      0.0
      [ Partition.Split.Heavy; Partition.Split.Light ]
  in
  let blind_curves =
    let db, e = fresh_engine ~indexed:true () in
    let feeds = Tpcr.Synth.zipf_feeds ~seed:seed_cal ~exponent db in
    Array.init 2 (fun i ->
        List.map
          (fun k ->
            for _ = 1 to k do
              Partition.Engine.arrive e i (feeds.Tpcr.Updates.next i)
            done;
            (k, drain_logical e ~table:i))
          sizes)
  in
  let costs_blind =
    Array.mapi (fun i curve -> hull ("blind_" ^ names.(i)) curve) blind_curves
  in
  let at k c = List.assoc k c in
  emit ~name:("partition_curves_" ^ name)
    ~aligns:
      (Util.Tablefmt.Right
      :: List.map (fun _ -> Util.Tablefmt.Right) [ 1; 2; 3; 4; 5; 6 ])
    ~header:
      ("k"
      :: (List.init 4 (fun p -> Partition.Pspec.label ~names p)
         @ [ "R blind"; "S blind" ]))
    (List.map
       (fun k ->
         string_of_int k
         :: (List.init 4 (fun p -> fcell ~decimals:1 (at k part_curves.(p)))
            @ [
                fcell ~decimals:1 (at k blind_curves.(0));
                fcell ~decimals:1 (at k blind_curves.(1));
              ]))
       sizes);
  (* -- the shared stream and both specs ------------------------------------- *)
  let logical_arrivals =
    Array.init (horizon + 1) (fun _ -> [| r_rate; s_rate |])
  in
  let db_p, engine = fresh_engine ~indexed:true () in
  let stream =
    Partition.Runner.materialize
      ~feeds:(Tpcr.Synth.zipf_feeds ~seed:seed_live ~exponent db_p)
      ~arrivals:logical_arrivals
  in
  let parr = Partition.Runner.partitioned_arrivals engine stream in
  let limit =
    let worst costs =
      Array.fold_left (fun acc f -> Float.max acc (Cost.Func.eval f 1)) 0.0 costs
    in
    limit_factor *. Float.max (worst costs_blind) (worst costs_part)
  in
  let spec_blind =
    Abivm.Spec.make ~costs:costs_blind ~limit ~arrivals:logical_arrivals
  in
  let spec_part = Partition.Pspec.make ~costs:costs_part ~limit ~arrivals:parr in
  let sol_blind = Abivm.Astar.solve spec_blind in
  let sol_part = Abivm.Astar.solve spec_part in
  (* -- execute both plans on the bit-identical stream and engine ------------ *)
  let part_exec =
    Partition.Runner.run engine stream ~spec:spec_part ~plan:sol_part.Abivm.Astar.plan
  in
  (* The blind plan's logical batch [k_i] drains the first [k_i] arrivals
     of table [i] in FIFO order; per-partition queues preserve that order,
     so the batch is exactly (heavy count, light count) of that prefix. *)
  let blind_cost, blind_batches =
    let _, e = fresh_engine ~indexed:true () in
    let fifo = Array.init 2 (fun _ -> Queue.create ()) in
    let cost = ref 0.0 and batches = ref 0 in
    Array.iteri
      (fun t step ->
        List.iter
          (fun (i, change) ->
            Partition.Engine.arrive e i change;
            Queue.push (Partition.Engine.classify e i change) fifo.(i))
          step;
        match Abivm.Plan.action_at sol_blind.Abivm.Astar.plan t with
        | None -> ()
        | Some action ->
            Array.iteri
              (fun i k ->
                if k > 0 then begin
                  let heavy = ref 0 and light = ref 0 in
                  for _ = 1 to k do
                    match Queue.pop fifo.(i) with
                    | Partition.Split.Heavy -> incr heavy
                    | Partition.Split.Light -> incr light
                  done;
                  List.iter
                    (fun (cls, kp) ->
                      if kp > 0 then begin
                        let p = Partition.Pspec.index ~table:i cls in
                        cost :=
                          !cost
                          +. Relation.Meter.cost_units
                               (Partition.Engine.process e ~partition:p kp);
                        incr batches
                      end)
                    [
                      (Partition.Split.Heavy, !heavy);
                      (Partition.Split.Light, !light);
                    ]
                end)
              action)
      stream;
    if Array.exists (fun q -> Partition.Engine.pending_in e q > 0)
         (Array.init 4 Fun.id)
    then invalid_arg "partition bench: blind plan left modifications queued";
    ignore (Partition.Engine.rows e);
    (!cost, !batches)
  in
  let gate_failures = ref [] in
  let gate what ok detail =
    Printf.printf "gate %-38s %s  (%s)\n" what (if ok then "PASS" else "FAIL")
      detail;
    if not ok then gate_failures := what :: !gate_failures
  in
  emit ~name:("partition_planner_" ^ name)
    ~aligns:
      [ Util.Tablefmt.Left; Util.Tablefmt.Right; Util.Tablefmt.Right;
        Util.Tablefmt.Right; Util.Tablefmt.Right ]
    ~header:[ "planner"; "tables"; "plan cost"; "executed"; "batches" ]
    [
      [
        "skew-blind"; "2"; fcell ~decimals:1 sol_blind.Abivm.Astar.cost;
        fcell ~decimals:1 blind_cost; string_of_int blind_batches;
      ];
      [
        "skew-aware"; "4"; fcell ~decimals:1 sol_part.Abivm.Astar.cost;
        fcell ~decimals:1 part_exec.Partition.Runner.cost_units;
        string_of_int part_exec.Partition.Runner.batches;
      ];
    ];
  let win = blind_cost /. part_exec.Partition.Runner.cost_units in
  gate "skew-aware executed-cost win"
    (part_exec.Partition.Runner.cost_units < blind_cost)
    (Printf.sprintf "%.1f vs %.1f units (%.2fx)"
       part_exec.Partition.Runner.cost_units blind_cost win);
  let zipf_identical =
    let db_c = mk ~indexed:false () in
    let m_c =
      Ivm.Maintainer.create ~meter:db_c.Tpcr.Synth.meter
        (Tpcr.Synth.join_view db_c)
    in
    Array.iter
      (List.iter (fun (i, change) -> Ivm.Maintainer.on_arrive m_c i change))
      stream;
    ignore (Ivm.Maintainer.refresh m_c);
    List.equal Relation.Tuple.equal
      (Partition.Engine.rows engine)
      (Ivm.Maintainer.rows m_c)
  in
  gate "zipf run view contents identical" zipf_identical
    "partitioned vs unpartitioned engine after the full stream";
  (* -- uniform-key bit-identity --------------------------------------------- *)
  let uniform_identical =
    let db_u = mk ~indexed:false () in
    let m_u =
      Ivm.Maintainer.create ~meter:db_u.Tpcr.Synth.meter
        (Tpcr.Synth.join_view db_u)
    in
    let _, e_u = fresh_engine ~indexed:true () in
    let u_arrivals = Array.init 9 (fun _ -> [| 3; 3 |]) in
    let u_stream =
      Partition.Runner.materialize
        ~feeds:(Tpcr.Synth.insert_feeds ~seed:seed_live db_u)
        ~arrivals:u_arrivals
    in
    Array.for_all
      (fun step ->
        List.iter
          (fun (i, change) ->
            Ivm.Maintainer.on_arrive m_u i change;
            Partition.Engine.arrive e_u i change)
          step;
        ignore (Ivm.Maintainer.refresh m_u);
        ignore (Partition.Engine.refresh e_u);
        List.equal Relation.Tuple.equal (Ivm.Maintainer.rows m_u)
          (Partition.Engine.rows e_u))
      u_stream
    && Result.is_ok (Partition.Engine.check_consistent e_u)
  in
  gate "uniform-key routing bit-identical" uniform_identical
    "per-step view contents, partitioned vs unpartitioned";
  (* -- parallel Exact DP cross-check on the partitioned spec ----------------
     A thin head of the partitioned instance (arrivals capped at 1) keeps
     the full 2n-table state space inside the DP's expansion budget; the
     gate is about solver agreement, not workload scale. *)
  let spec_small =
    Partition.Pspec.make ~costs:costs_part ~limit
      ~arrivals:
        (Array.init (exact_horizon + 1) (fun t ->
             Array.map (fun k -> min k 1) parr.(t)))
  in
  let domains = List.sort_uniq compare (1 :: !bench_domains) in
  let exact_results =
    List.map
      (fun d ->
        match Abivm.Exact.solve ~max_expansions:4_000_000 ~domains:d spec_small with
        | cost, plan -> Some (d, cost, plan)
        | exception Abivm.Exact.Too_large _ -> None)
      domains
  in
  (match exact_results with
  | Some (_, c1, p1) :: rest when List.for_all Option.is_some rest ->
      let agree =
        List.for_all
          (fun r ->
            match r with
            | Some (_, c, p) ->
                Int64.bits_of_float c = Int64.bits_of_float c1
                && Abivm.Plan.actions p = Abivm.Plan.actions p1
            | None -> false)
          rest
      in
      gate
        (Printf.sprintf "parallel Exact bit-identical (domains %s)"
           (String.concat "," (List.map string_of_int domains)))
        agree
        (Printf.sprintf "cost %.2f at horizon %d" c1 exact_horizon);
      let sub_astar = (Abivm.Astar.solve spec_small).Abivm.Astar.cost in
      gate "exact <= A* <= 2 exact (partitioned)"
        (sub_astar >= c1 -. 1e-6 && sub_astar <= (2.0 *. c1) +. 1e-6)
        (Printf.sprintf "exact %.2f, A* %.2f" c1 sub_astar)
  | _ ->
      gate "parallel Exact bit-identical" false
        "exact solver exceeded its expansion budget");
  (* -- JSON ------------------------------------------------------------------ *)
  let curve_json label points =
    Printf.sprintf "    { \"partition\": %S, \"points\": [%s] }" label
      (String.concat ", "
         (List.map (fun (k, c) -> Printf.sprintf "[%d, %.3f]" k c) points))
  in
  let path = "BENCH_partition.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"grid\": %S,\n  %s,\n  \"r_rows\": %d,\n  \"s_rows\": %d,\n  \
     \"horizon\": %d,\n  \"exponent\": %.2f,\n  \"splits\": [\n%s\n  ],\n  \
     \"curves\": [\n%s\n  ],\n  \"planner\": { \"blind_plan\": %.3f, \
     \"blind_executed\": %.3f, \"part_plan\": %.3f, \"part_executed\": %.3f, \
     \"win\": %.4f },\n  \"gates\": { \"skew_win\": %b, \
     \"uniform_bit_identical\": %b, \"failed\": [%s] }\n}\n"
    name (meta_json ()) r_rows s_rows horizon exponent
    (String.concat ",\n"
       (List.init 2 (fun i ->
            Printf.sprintf
              "    { \"table\": %S, \"heavy_keys\": %d, \"coverage\": %.4f, \
               \"threshold\": %.4f }"
              names.(i)
              (Partition.Split.heavy_count splits.(i))
              (Partition.Split.coverage splits.(i))
              (Partition.Split.threshold splits.(i)))))
    (String.concat ",\n"
       (List.concat
          [
            Array.to_list
              (Array.mapi
                 (fun p c -> curve_json (Partition.Pspec.label ~names p) c)
                 part_curves);
            Array.to_list
              (Array.mapi
                 (fun i c -> curve_json ("blind_" ^ names.(i)) c)
                 blind_curves);
          ]))
    sol_blind.Abivm.Astar.cost blind_cost sol_part.Abivm.Astar.cost
    part_exec.Partition.Runner.cost_units win
    (part_exec.Partition.Runner.cost_units < blind_cost)
    uniform_identical
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "%S" s) !gate_failures));
  close_out oc;
  Printf.printf "(written to %s)\n" path;
  Printf.printf
    "headline: splitting each relation by key frequency gives the planner \
     honest per-partition curves — hot keys flush eagerly through the \
     index, the tail amortizes into shared scans — beating the \
     single-curve deployment by %.2fx executed on the same Zipfian stream\n"
    win;
  if !gate_failures <> [] then begin
    Printf.eprintf "partition bench: %d gate(s) failed: %s\n"
      (List.length !gate_failures)
      (String.concat "; " (List.rev !gate_failures));
    exit 1
  end

let run_partition () =
  run_partition_grid ~name:"reference" ~r_rows:120 ~s_rows:700 ~horizon:30
    ~sizes:[ 1; 2; 4; 8; 16; 32 ] ~limit_factor:1.45 ~rates:(4, 8)
    ~exact_horizon:6 ()

let run_partition_smoke () =
  run_partition_grid ~name:"smoke" ~r_rows:100 ~s_rows:500 ~horizon:20
    ~sizes:[ 1; 4; 16 ] ~limit_factor:1.45 ~rates:(4, 8) ~exact_horizon:5 ()

let sections =
  [
    ("fig1", run_fig1);
    ("intro", run_intro);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("tightness", run_tightness);
    ("ablation", run_ablation);
    ("opflow", run_opflow);
    ("conjectures", run_conjectures);
    ("multiview", run_multiview);
    ("multiview-par", run_multiview_par);
    ("multiview-par-smoke", run_multiview_par_smoke);
    ("astar", run_astar);
    ("astar-smoke", run_astar_smoke);
    ("robust", run_robust);
    ("robust-smoke", run_robust_smoke);
    ("durable", run_durable);
    ("durable-smoke", run_durable_smoke);
    ("columnar", run_columnar);
    ("columnar-smoke", run_columnar_smoke);
    ("serve", run_serve);
    ("serve-smoke", run_serve_smoke);
    ("serve-io", run_serveio);
    ("serve-io-smoke", run_serveio_smoke);
    ("ho", run_ho);
    ("ho-smoke", run_ho_smoke);
    ("partition", run_partition);
    ("partition-smoke", run_partition_smoke);
    ("micro", run_micro);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let trace = ref None and metrics = ref false in
  let rec strip_flags = function
    | "--csv" :: dir :: rest ->
        if not (Sys.file_exists dir && Sys.is_directory dir) then begin
          Printf.eprintf "--csv: %s is not a directory\n" dir;
          exit 1
        end;
        csv_dir := Some dir;
        strip_flags rest
    | "--trace" :: path :: rest ->
        trace := Some path;
        strip_flags rest
    | "--metrics" :: rest ->
        metrics := true;
        strip_flags rest
    | "--domains" :: spec :: rest ->
        let parsed =
          try
            List.map
              (fun s ->
                let d = int_of_string (String.trim s) in
                if d < 1 then failwith "domain counts must be >= 1";
                d)
              (String.split_on_char ',' spec)
          with _ ->
            Printf.eprintf
              "--domains: expected a comma-separated list of positive ints \
               (e.g. 1,2,4), got %S\n"
              spec;
            exit 1
        in
        if parsed = [] then begin
          Printf.eprintf "--domains: empty list\n";
          exit 1
        end;
        bench_domains := parsed;
        strip_flags rest
    | section :: rest -> section :: strip_flags rest
    | [] -> []
  in
  let args = strip_flags args in
  if !trace <> None || !metrics then begin
    let sinks =
      match !trace with
      | Some path -> [ Telemetry.Sink.jsonl_file path ]
      | None -> []
    in
    Telemetry.enable ~sinks ()
  end;
  let requested =
    if args <> [] then args
    else
      (* The smoke grids are CI alias targets; running them after the
         reference grids would overwrite BENCH_*.json with toy data. *)
      List.filter
        (fun s ->
          s <> "astar-smoke" && s <> "robust-smoke" && s <> "durable-smoke"
          && s <> "multiview-par-smoke" && s <> "columnar-smoke"
          && s <> "ho-smoke" && s <> "partition-smoke"
          && s <> "serve-io-smoke")
        (List.map fst sections)
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested;
  if Telemetry.enabled () then begin
    if !metrics then begin
      match Telemetry.snapshot () with
      | [] -> ()
      | snap ->
          Printf.printf "\nmetrics:\n%s" (Telemetry.Metrics.to_table snap)
    end;
    Telemetry.disable ()
  end
